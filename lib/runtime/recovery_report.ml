type item =
  | Stack_repair of { worker : int; event : Pstack.Repair.event }
  | Heap_repair of Nvheap.Heap.repair

type t = { items : item list }

let empty = { items = [] }
let of_items items = { items }
let items t = t.items
let is_clean t = t.items = []

let quarantined_arenas t =
  List.filter_map
    (function
      | Heap_repair (Nvheap.Heap.Quarantined_arena { arena; _ }) -> Some arena
      | _ -> None)
    t.items

let repaired_count t =
  List.length
    (List.filter
       (function
         | Stack_repair _
         | Heap_repair
             (Nvheap.Heap.Rebuilt_free_list _ | Nvheap.Heap.Repaired_arena_header _)
           ->
             true
         | Heap_repair (Nvheap.Heap.Quarantined_arena _) -> false)
       t.items)

let quarantined_count t = List.length (quarantined_arenas t)

let pp_item fmt = function
  | Stack_repair { worker; event } ->
      Format.fprintf fmt "worker %d %a" worker Pstack.Repair.pp_event event
  | Heap_repair r -> Format.fprintf fmt "heap: %a" Nvheap.Heap.pp_repair r

let pp fmt t =
  if is_clean t then Format.fprintf fmt "recovery clean (no media repairs)"
  else begin
    Format.fprintf fmt "@[<v>recovery repaired %d, quarantined %d:"
      (repaired_count t) (quarantined_count t);
    List.iter (fun it -> Format.fprintf fmt "@,  %a" pp_item it) t.items;
    Format.fprintf fmt "@]"
  end

let to_string t = Format.asprintf "%a" pp t
