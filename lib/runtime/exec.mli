(** The call protocol and the per-stack recovery algorithm.

    This module ties a worker's persistent stack to the function registry:

    - {!call} implements a function invocation (Sections 3.4 and 4.2): push
      the callee's frame (the single-byte marker flush linearizes the
      invocation), run the body, deposit the small answer in the {e
      caller}'s frame answer slot, flush it, and pop (the single-byte
      marker flush linearizes the completion);
    - {!recover} implements one recovery thread of Section 4.3: walk the
      stack from top to bottom, run each frame's recover function, then pop
      the frame — so a repeated failure resumes where the previous recovery
      was interrupted rather than restarting it.

    A context is not thread-safe: each worker owns one. *)

type stack =
  | Stack : (module Pstack.Stack_intf.S with type t = 'a) * 'a -> stack
      (** A persistent stack packaged with its implementation, so the
          runtime works with any of the three stack variants. *)

type t = {
  pmem : Nvram.Pmem.t;
  heap : Nvheap.Heap.t;
  stack : stack;
  registry : t Registry.t;
  worker_id : int;
}

val make :
  pmem:Nvram.Pmem.t ->
  heap:Nvheap.Heap.t ->
  stack:stack ->
  registry:t Registry.t ->
  worker_id:int ->
  t

(** {1 Execution probe}

    Typed notifications at the protocol's observable moments, consumed by
    the model checker's trace-property oracles (Mc.Prop).  Orthogonal to
    the [Obs] tracing pipeline: probes are exact and synchronous (no ring
    buffer, no timestamps, never dropped), which along-the-path property
    checking requires; [Obs] traces are for humans and profilers. *)

type probe =
  | Op_invoked of { worker : int; func_id : int }
      (** {!call} is about to push the invocation frame. *)
  | Op_responded of { worker : int; func_id : int }
      (** {!call} has persisted the completion (post-barrier) and is about
          to return the answer to the caller. *)
  | Recovery_pass of { worker : int; frames : int }
      (** {!recover} starts a pass over a stack currently holding [frames]
          interrupted frames (0 = nothing to repair). *)

val set_probe : (probe -> unit) option -> unit
(** [set_probe (Some f)] installs a global probe callback; [None] removes
    it.  Like [Crash.set_scheduler], not thread-safe: intended for
    single-threaded cooperative model-checking runs only, and
    allocation-free when disabled. *)

val call : t -> func_id:int -> args:bytes -> int64
(** [call t ~func_id ~args] invokes the registered function on this
    worker's persistent stack and returns its small answer.  Nested calls
    from within the body use the same context.

    @raise Registry.Unknown_function if [func_id] is not registered. *)

val last_answer : t -> int64 option
(** [last_answer t] is the answer slot of the currently executing
    function's own frame — set by its most recently completed callee,
    [None] if no callee has completed since the frame was pushed (or since
    {!clear_last_answer}).  Called outside any function, it reads the dummy
    frame's slot. *)

val clear_last_answer : t -> unit

val stack_depth : t -> int
val stack_frames : t -> (Nvram.Offset.t * Pstack.Frame.t) list
val live_blocks : t -> Nvram.Offset.t list

val recover : t -> unit
(** [recover t] completes every function that was executing on this stack
    when the crash hit: from top to bottom, run the frame's recover
    function, deposit its answer in the caller's frame, pop.  Returns when
    only the dummy frame remains.  Safe to re-run after repeated
    failures. *)
