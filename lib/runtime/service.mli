(** Continuous server-driven execution over the worker domains.

    {!System.run} is batch-shaped: it drains the persistent task table and
    joins its domains.  A network service needs the opposite life cycle —
    workers that outlive any one request and execute {!Exec.call}s as they
    arrive.  A service spawns one domain per configured worker; each pulls
    jobs from a volatile queue and runs them through its own persistent
    stack context, so every request enjoys the full NSRL call protocol
    (frame push linearizes the invocation, the completion is persisted
    before the answer is surrendered).

    The queue is deliberately volatile, like {!Work_queue} under
    {!System.run}: a job that was accepted but not completed when the
    process dies simply never happened {e unless} its frame reached the
    persistent stack — in which case the next start's {!System.recover}
    completes it.  Exactly-once delivery to clients is layered on top by
    the persistent dedup table (see [Recoverable.Dedup]), not here.

    Completion callbacks run on the worker domain that executed the job
    and must not raise. *)

type t

val start : System.t -> t
(** [start sys] spawns [(System.config sys).workers] worker domains.  Call
    after {!System.recover} has completed — the workers use the system's
    execution contexts, which recovery replaces. *)

val submit :
  t -> func_id:int -> args:bytes -> k:((int64, exn) result -> unit) -> unit
(** Enqueue one invocation.  [k] receives the answer, or the exception the
    body raised (the worker survives and moves to the next job).  Callable
    from any thread.

    @raise Invalid_argument if the service has been stopped. *)

val pending : t -> int
(** Jobs accepted and not yet picked up by a worker. *)

val stop : t -> unit
(** Drain outstanding jobs, then join every worker domain.  Idempotent. *)
