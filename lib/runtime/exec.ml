module Pmem = Nvram.Pmem

type stack =
  | Stack : (module Pstack.Stack_intf.S with type t = 'a) * 'a -> stack

type t = {
  pmem : Pmem.t;
  heap : Nvheap.Heap.t;
  stack : stack;
  registry : t Registry.t;
  worker_id : int;
}

let make ~pmem ~heap ~stack ~registry ~worker_id =
  { pmem; heap; stack; registry; worker_id }

type probe =
  | Op_invoked of { worker : int; func_id : int }
  | Op_responded of { worker : int; func_id : int }
  | Recovery_pass of { worker : int; frames : int }

(* A plain mutable cell, like [Crash.set_scheduler]: only single-threaded
   model-checking runs install a probe, so there is no contention; the
   free-running hot path pays one load and a branch. *)
let probe_hook : (probe -> unit) option ref = ref None

let set_probe f = probe_hook := f

let emit_probe p = match !probe_hook with None -> () | Some f -> f p

let push t ~func_id ~args =
  let (Stack ((module S), s)) = t.stack in
  S.push s ~func_id ~args

let pop t =
  let (Stack ((module S), s)) = t.stack in
  S.pop s

let top t =
  let (Stack ((module S), s)) = t.stack in
  S.top s

let top_offset t =
  let (Stack ((module S), s)) = t.stack in
  S.top_offset s

let under_top_offset t =
  let (Stack ((module S), s)) = t.stack in
  S.under_top_offset s

let stack_depth t =
  let (Stack ((module S), s)) = t.stack in
  S.depth s

let stack_frames t =
  let (Stack ((module S), s)) = t.stack in
  S.frames s

let live_blocks t =
  let (Stack ((module S), s)) = t.stack in
  S.live_blocks s

(* Deposit the callee's answer in the caller's frame and pop the callee.
   The answer must be flushed before the stack end moves backward
   (Section 4.2): [Frame.write_answer] flushes, and the pop's own
   single-byte flush is the linearization of the completion. *)
let return_and_pop t answer =
  Pstack.Frame.write_answer t.pmem ~frame:(under_top_offset t) answer;
  pop t

let call t ~func_id ~args =
  let entry = Registry.find_exn t.registry func_id in
  let invoke () =
    emit_probe (Op_invoked { worker = t.worker_id; func_id });
    push t ~func_id ~args;
    let answer = entry.Registry.body t args in
    return_and_pop t answer;
    (* Completion linearization (Section 3.4): the pop's one-byte flush is
       the linearization point, so on a coalescing device the call's
       persistence points must take effect before the answer escapes to the
       caller.  No-op on an eager device. *)
    Pmem.persist_barrier t.pmem;
    emit_probe (Op_responded { worker = t.worker_id; func_id });
    answer
  in
  if Obs.Config.enabled () then begin
    let t0_ns = Obs.Config.now_ns () in
    Obs.Trace.record (Obs.Trace.Op_begin { func_id });
    Obs.Counters.incr_ops Obs.Probe.counters;
    match invoke () with
    | answer ->
        Obs.Probe.record_latency Obs.Probe.Exec_call ~t0_ns;
        Obs.Trace.record (Obs.Trace.Op_end { func_id });
        answer
    | exception e ->
        (* A crash aborts the op; close the trace span so exports stay
           balanced, but record no latency for the unfinished call. *)
        Obs.Trace.record (Obs.Trace.Op_end { func_id });
        raise e
  end
  else invoke ()

let last_answer t =
  Pstack.Frame.read_answer t.pmem ~frame:(top_offset t)

let clear_last_answer t =
  Pstack.Frame.clear_answer t.pmem ~frame:(top_offset t)

let recover t =
  emit_probe (Recovery_pass { worker = t.worker_id; frames = stack_depth t });
  let obs = Obs.Config.enabled () in
  let t0_ns = if obs then Obs.Config.now_ns () else 0 in
  if obs then begin
    Obs.Trace.record (Obs.Trace.Recovery_begin { worker = t.worker_id });
    Obs.Counters.incr_recovery_passes Obs.Probe.counters
  end;
  let finish_span ~completed =
    if obs then begin
      (* A pass interrupted by a fresh crash closes its trace span but does
         not contribute a latency sample. *)
      if completed then Obs.Probe.record_latency Obs.Probe.Exec_recover ~t0_ns;
      Obs.Trace.record (Obs.Trace.Recovery_end { worker = t.worker_id })
    end
  in
  let rec drain () =
    match top t with
    | None -> ()
    | Some (_off, frame) ->
        let entry = Registry.find_exn t.registry frame.Pstack.Frame.func_id in
        (* The recover function may itself perform nested [call]s; they
           push and pop above this frame, leaving it on top again. *)
        (match entry.Registry.recover t frame.Pstack.Frame.args with
        | Registry.Complete answer -> return_and_pop t answer
        | Registry.Rolled_back ->
            (* The invocation never happened: leave no answer behind so the
               caller's recovery re-invokes rather than resumes. *)
            Pstack.Frame.clear_answer t.pmem ~frame:(under_top_offset t);
            pop t);
        drain ()
  in
  (match drain () with
  | () ->
      (* The recovery pass externalises its repairs the same way a call
         externalises its answer. *)
      Pmem.persist_barrier t.pmem;
      finish_span ~completed:true
  | exception e ->
      finish_span ~completed:false;
      raise e)
