type job = { func_id : int; args : bytes; k : (int64, exn) result -> unit }

type t = {
  queue : job Work_queue.t;
  domains : unit Domain.t array;
  stopped : bool Atomic.t;
}

(* Each worker owns one execution context for its whole life; a context is
   single-threaded by construction (its persistent stack is), and jobs for
   that worker serialise through the queue, so no further locking is
   needed.  The crash signal is *not* caught: a simulated crash must tear
   the whole service down, exactly as [System.run] lets it tear down the
   batch workers. *)
let worker sys queue i =
  let ctx = System.ctx sys i in
  let rec loop () =
    match Work_queue.pop queue with
    | None -> ()
    | Some job ->
        (match Exec.call ctx ~func_id:job.func_id ~args:job.args with
        | answer -> job.k (Ok answer)
        | exception Nvram.Crash.Crash_now -> raise Nvram.Crash.Crash_now
        | exception exn -> job.k (Error exn));
        loop ()
  in
  loop ()

let start sys =
  let queue = Work_queue.create () in
  let workers = (System.config sys).workers in
  let domains =
    Array.init workers (fun i -> Domain.spawn (fun () -> worker sys queue i))
  in
  { queue; domains; stopped = Atomic.make false }

let submit t ~func_id ~args ~k =
  try Work_queue.push t.queue { func_id; args; k }
  with Invalid_argument _ -> invalid_arg "Service.submit: service stopped"

let pending t = Work_queue.length t.queue

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Work_queue.close t.queue;
    Array.iter Domain.join t.domains
  end
