module Pmem = Nvram.Pmem
module Offset = Nvram.Offset
module Heap = Nvheap.Heap
module Dump = Pstack.Dump

type finding = { where : string; detail : string; repaired : bool }
type t = { findings : finding list; fatal : bool }

let is_clean t = t.findings = [] && not t.fatal

let note_detected () =
  if Obs.Config.enabled () then
    Obs.Counters.incr_faults_detected Obs.Probe.counters

(* A healthy dump is frames with good CRCs ending in a STACK-END marker; the
   trailing [Invalid_tail] after the top frame is the normal "rest of the
   region is dead" line and not damage. *)
let stack_findings ~where lines =
  let rec go acc saw_end = function
    | [] -> acc
    | Dump.Frame { off; crc_ok; last; _ } :: rest ->
        let acc =
          if crc_ok then acc
          else
            {
              where;
              detail =
                Printf.sprintf "frame at %d fails its checksum"
                  (Offset.to_int off);
              repaired = false;
            }
            :: acc
        in
        go acc (saw_end || last) rest
    | Dump.Pointer_frame { off; crc_ok; _ } :: rest ->
        let acc =
          if crc_ok then acc
          else
            {
              where;
              detail =
                Printf.sprintf "pointer frame at %d fails its checksum"
                  (Offset.to_int off);
              repaired = false;
            }
            :: acc
        in
        go acc saw_end rest
    | Dump.Invalid_tail { off; note } :: rest ->
        let acc =
          if saw_end then acc (* dead space after the top frame: normal *)
          else
            {
              where;
              detail =
                Printf.sprintf "scan broke at %d before any stack end: %s"
                  (Offset.to_int off) note;
              repaired = false;
            }
            :: acc
        in
        go acc saw_end rest
  in
  List.rev (go [] false lines)

let scan_stack pmem config i =
  match config.System.stack_kind with
  | System.Bounded_stack _ ->
      let base, _ = System.bounded_region config i in
      Dump.scan_region pmem ~view:Dump.Volatile ~base
  | System.Resizable_stack _ ->
      let payload =
        Offset.of_int (Pmem.read_int pmem (System.anchor_cell i))
      in
      Dump.scan_region pmem ~view:Dump.Volatile ~base:payload
  | System.Linked_stack _ ->
      Dump.scan_linked pmem ~view:Dump.Volatile ~anchor:(System.anchor_cell i)

let repair_stack pmem config heap i ~report =
  match config.System.stack_kind with
  | System.Bounded_stack _ ->
      let base, capacity = System.bounded_region config i in
      ignore (Pstack.Bounded.attach ~report pmem ~base ~capacity)
  | System.Resizable_stack _ ->
      ignore
        (Pstack.Resizable.attach ~report pmem ~heap
           ~anchor:(System.anchor_cell i))
  | System.Linked_stack _ ->
      ignore
        (Pstack.Linked.attach ~report pmem ~heap
           ~anchor:(System.anchor_cell i) ())

let run ?(repair = false) pmem =
  match System.image_config pmem with
  | exception Invalid_argument reason ->
      note_detected ();
      { findings = [ { where = "superblock"; detail = reason; repaired = false } ];
        fatal = true }
  | config ->
      let findings = ref [] in
      let fatal = ref false in
      let add f = findings := f :: !findings in
      let heap_base = System.image_heap_base pmem config in
      (* Heap first: a repair pass rebuilds its free lists before the
         heap-backed stacks re-attach through it. *)
      let heap =
        if repair then
          match
            Heap.recover
              ~report:(fun r ->
                add
                  {
                    where = "heap";
                    detail = Format.asprintf "%a" Heap.pp_repair r;
                    repaired =
                      (match r with Heap.Quarantined_arena _ -> false | _ -> true);
                  })
              pmem ~base:heap_base
          with
          | heap -> Some heap
          | exception Invalid_argument reason ->
              note_detected ();
              add { where = "heap"; detail = reason; repaired = false };
              fatal := true;
              None
        else
          match Heap.open_existing pmem ~base:heap_base with
          | heap -> Some heap
          | exception Invalid_argument reason ->
              add { where = "heap"; detail = reason; repaired = false };
              fatal := true;
              None
      in
      (match heap with
      | None -> ()
      | Some heap -> (
          (match Heap.check heap with
          | Ok () -> ()
          | Error detail ->
              note_detected ();
              add { where = "heap"; detail; repaired = false });
          List.iter
            (fun i ->
              add
                {
                  where = "heap";
                  detail = Printf.sprintf "arena %d is quarantined" i;
                  repaired = false;
                })
            (Heap.quarantined_arenas heap);
          (* Stacks: passively scan for checksum damage; in repair mode also
             re-attach, which truncates torn tails in place. *)
          for i = 0 to config.System.workers - 1 do
            let where = Printf.sprintf "worker %d stack" i in
            (match scan_stack pmem config i with
            | lines ->
                let fs = stack_findings ~where lines in
                List.iter (fun _ -> note_detected ()) fs;
                List.iter add fs
            | exception _ ->
                note_detected ();
                add
                  {
                    where;
                    detail = "stack anchor or chain unreadable";
                    repaired = false;
                  });
            if repair then
              match
                repair_stack pmem config heap i ~report:(fun e ->
                    add
                      {
                        where;
                        detail = Pstack.Repair.event_to_string e;
                        repaired = true;
                      })
              with
              | () -> ()
              | exception Pstack.Repair.Corrupt_stack { reason; _ } ->
                  add { where; detail = reason; repaired = false };
                  fatal := true
              | exception Invalid_argument reason ->
                  add { where; detail = reason; repaired = false };
                  fatal := true
          done))
      ;
      { findings = List.rev !findings; fatal = !fatal }

let pp fmt t =
  if is_clean t then Format.fprintf fmt "scrub: clean"
  else begin
    Format.fprintf fmt "@[<v>scrub: %d finding(s)%s"
      (List.length t.findings)
      (if t.fatal then " [FATAL]" else "");
    List.iter
      (fun { where; detail; repaired } ->
        Format.fprintf fmt "@,  %s: %s%s" where detail
          (if repaired then " [repaired]" else ""))
      t.findings;
    Format.fprintf fmt "@]"
  end

let to_string t = Format.asprintf "%a" pp t
