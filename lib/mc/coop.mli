(** Deterministic cooperative execution of system workers as effect-based
    fibers (OCaml 5 effects).

    Each worker body runs as a fiber that performs {!Yield} at the entry of
    every persistence operation — the hook point [Pmem] exposes through
    [Crash.sched_point], which is the same per-operation granularity the
    crash controller counts.  A scheduler loop owns all fibers on one
    thread and asks a [decide] callback, at every such point, which worker
    runs next or whether the simulated system crashes here instead.

    Because the hook fires {e before} the device takes any stripe lock, a
    suspended fiber never holds a device mutex; and because it is installed
    only around fiber steps, orchestrator code between steps runs
    hook-free.  After a crash (decided or externally armed) every fiber is
    drained: resumed once, it dies at its next device operation with
    [Crash_now] — the same prompt-stop behaviour free-running domains
    exhibit — or runs to completion if it touches the device no more. *)

type _ Effect.t += Yield : unit Effect.t

type decision =
  | Run of int  (** Let this worker execute its next persistence op. *)
  | Crash_here
      (** Crash the system now, before any pending operation executes —
          equivalent to an [At_op (op + 1)] plan at this point. *)

type point = {
  index : int;  (** Decision ordinal within this spawn, from 0. *)
  op : int;
      (** [Crash.ops] at decision time: persistence operations counted
          since the era was armed.  A crash here replays as
          [At_op (op + 1)]. *)
  enabled : int list;  (** Workers that have not finished, ascending. *)
  current : int option;
      (** Worker chosen at the previous decision, if any.  Choosing a
          different {e enabled} worker is a preemption; switching away
          from a finished worker is free. *)
  pending : (int * Nvram.Crash.access) list;
      (** For each enabled worker that is suspended at an operation entry,
          the footprint of the operation it will execute when chosen —
          what dynamic partial-order reduction needs to decide whether two
          choices commute.  Workers that have not yet reached their first
          device operation (fiber startup) are absent. *)
  prev_reads : (int * int) list;
      (** Cache-line ranges the device {e read} during the step that led
          to this point (most recent first) — attributed to the previous
          decision's transition, whose [pending] footprint names only the
          operation at its entry.  Empty at the first point of an era. *)
}

val default_decision : point -> decision
(** The non-preempting baseline: continue [current] while it is enabled,
    else the lowest-numbered enabled worker.

    @raise Invalid_argument on an empty [enabled] list. *)

val spawn :
  crash_ctl:Nvram.Crash.t -> decide:(point -> decision) -> Runtime.System.spawn
(** [spawn ~crash_ctl ~decide] is a {!Runtime.System.spawn} strategy that
    runs all workers cooperatively on the calling thread, consulting
    [decide] at every scheduling point.  Each era ([System.run] or
    [System.recover] invocation) calls the strategy afresh — fibers are
    per-era, while [decide] may keep state across eras.

    @raise Invalid_argument if [decide] returns [Run j] for a worker not
    in [enabled]. *)
