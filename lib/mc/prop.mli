(** Along-the-path trace properties for the model checker.

    Terminal-state oracles ([Fuzz.Harness] verdicts, user checks) see only
    where an execution {e ended}; the paper's NRSL obligations are about
    what happens {e along} the way — "no response escapes before its
    effects persist", "every crash is followed by a recovery pass that
    re-persists its repair".  This module gives the explorer a typed event
    stream and monitors over it (in the OPPAS/POMC style of checking
    properties on the paths the reduced search actually walks), fed from
    three exact sources: decision-time access footprints ({!Coop.point}),
    the runtime's execution probe ([Runtime.Exec.set_probe]) and the
    harness crash observer.  Monitors are deterministic and synchronous —
    no sampling, no ring buffer — so a flagged path is replayable. *)

type event =
  | Invoked of { worker : int; func_id : int }
      (** A call is about to push its invocation frame. *)
  | Responded of { worker : int; func_id : int }
      (** A call persisted its completion and returns its answer. *)
  | Access of { worker : int; access : Nvram.Crash.access }
      (** The worker executes a store/flush/CAS with this footprint. *)
  | Crashed of { era : int }  (** The whole-system crash fired. *)
  | Recovery of { worker : int; frames : int }
      (** A recovery pass starts over [frames] interrupted frames. *)

val pp_event : Format.formatter -> event -> unit

type monitor = {
  step : event -> string option;
      (** [Some msg] is a violation; the checker latches the first. *)
  finish : unit -> string option;
      (** End-of-stream obligations ([Some msg] = violation). *)
}

type t
(** A named property: a recipe for fresh per-execution monitors. *)

val name : t -> string

val always : name:string -> (unit -> event -> string option) -> t
(** [always ~name make] holds when no event ever violates: [make ()] runs
    per execution and returns the (stateful) step function; there is no
    end-of-stream obligation. *)

val eventually_within_era :
  name:string ->
  trigger:(event -> string option) ->
  witness:(event -> bool) ->
  deadline:(event -> bool) ->
  t
(** [eventually_within_era ~name ~trigger ~witness ~deadline]: whenever
    [trigger] returns [Some what], an obligation [what] is armed (a later
    trigger renews it); a [witness] event discharges it; a [deadline]
    event — or the end of the stream — while armed is a violation.  Events
    are tested witness-first, so an event that is both witness and
    deadline discharges. *)

val conj : name:string -> t list -> t
(** All component properties, first violation wins, under one name. *)

val response_implies_persist : t
(** No worker responds while a cache line it stored to is still volatile.
    Discharge is the {e program's} covering flush (or an auto-flush
    store): on a coalescing device the deferred write-back is certified
    separately by [check_equivalence], so a program-issued flush counts
    here even though the device defers it. *)

val crash_implies_recovery_repersists : t
(** Every crash is followed by a recovery pass before any new invocation;
    every pass over a non-empty stack re-persists its repair (the
    answer/abort marker of Section 4) before that worker invokes or
    responds again. *)

val all : t list
(** The shipped properties, in the order above. *)

val find : string -> t option
(** Look a shipped property up by name (the [--prop] flag). *)

val sabotage_drop_flushes : event -> event option
(** Drop program-issued flush events — the seeded self-check: with
    flushes hidden, {!response_implies_persist} must flag a
    cache-managed workload's first response. *)

type checker = {
  feed : event -> unit;
  result : unit -> (string * string) option;
      (** First violation as [(property name, message)]. *)
}

val run : ?sabotage:bool -> t list -> checker
(** Fresh monitors for one execution; [sabotage] filters the stream
    through {!sabotage_drop_flushes} before the monitors see it. *)
