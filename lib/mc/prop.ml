module Crash = Nvram.Crash

type event =
  | Invoked of { worker : int; func_id : int }
  | Responded of { worker : int; func_id : int }
  | Access of { worker : int; access : Crash.access }
  | Crashed of { era : int }
  | Recovery of { worker : int; frames : int }

let pp_event fmt = function
  | Invoked { worker; func_id } ->
      Format.fprintf fmt "invoked w%d f%d" worker func_id
  | Responded { worker; func_id } ->
      Format.fprintf fmt "responded w%d f%d" worker func_id
  | Access { worker; access } ->
      let kind =
        match access.Crash.kind with
        | Crash.Write -> "write"
        | Crash.Flush -> "flush"
        | Crash.Cas -> "cas"
      in
      Format.fprintf fmt "%s w%d lines %d-%d%s" kind worker
        access.Crash.first_line access.Crash.last_line
        (if access.Crash.persists then " persists" else "")
  | Crashed { era } -> Format.fprintf fmt "crash era %d" era
  | Recovery { worker; frames } ->
      Format.fprintf fmt "recovery w%d frames %d" worker frames

type monitor = {
  step : event -> string option;
  finish : unit -> string option;
}

type t = { name : string; instantiate : unit -> monitor }

let name t = t.name

let always ~name make_step =
  {
    name;
    instantiate =
      (fun () -> { step = make_step (); finish = (fun () -> None) });
  }

let eventually_within_era ~name ~trigger ~witness ~deadline =
  {
    name;
    instantiate =
      (fun () ->
        let pending = ref None in
        let violate what =
          pending := None;
          Some (Printf.sprintf "unmet obligation: %s" what)
        in
        let step ev =
          match !pending with
          | Some _ when witness ev ->
              pending := None;
              None
          | Some what when deadline ev -> violate what
          | _ ->
              (match trigger ev with
              | Some what -> pending := Some what
              | None -> ());
              None
        in
        let finish () =
          match !pending with None -> None | Some what -> violate what
        in
        { step; finish });
  }

let conj ~name props =
  {
    name;
    instantiate =
      (fun () ->
        let ms = List.map (fun p -> p.instantiate ()) props in
        let first f = List.fold_left
            (fun acc m -> match acc with Some _ -> acc | None -> f m)
            None ms
        in
        {
          step = (fun ev -> first (fun m -> m.step ev));
          finish = (fun () -> first (fun m -> m.finish ()));
        });
  }

(* P1.  A worker must not respond while a cache line it stored to is still
   volatile: track, per dirty line, the workers with unpersisted stores,
   discharge on a covering flush or a persisting store, and flag any
   [Responded] by a worker that still owns a dirty line.  This checks the
   {e program's} flush discipline — on a coalescing device a program-issued
   flush discharges even though the device defers the write-back, because
   deferral correctness is certified separately ([check_equivalence]). *)
let response_implies_persist =
  always ~name:"response-implies-persist" (fun () ->
      let dirty : (int, int list) Hashtbl.t = Hashtbl.create 32 in
      fun ev ->
        match ev with
        | Access { worker; access } ->
            let clear () =
              for l = access.Crash.first_line to access.Crash.last_line do
                Hashtbl.remove dirty l
              done
            in
            (match access.Crash.kind with
            | Crash.Flush -> clear ()
            | Crash.Write | Crash.Cas ->
                if access.Crash.persists then clear ()
                else
                  for l = access.Crash.first_line to access.Crash.last_line do
                    let ws =
                      Option.value (Hashtbl.find_opt dirty l) ~default:[]
                    in
                    if not (List.mem worker ws) then
                      Hashtbl.replace dirty l (worker :: ws)
                  done);
            None
        | Responded { worker; func_id } ->
            let line =
              Hashtbl.fold
                (fun l ws best ->
                  if List.mem worker ws then
                    match best with
                    | Some b when b <= l -> best
                    | _ -> Some l
                  else best)
                dirty None
            in
            Option.map
              (fun l ->
                Printf.sprintf
                  "worker %d responded (func %d) with its store to line %d \
                   still unpersisted"
                  worker func_id l)
              line
        | Crashed _ ->
            (* The volatile cache is gone and so are the in-flight calls:
               nothing left to owe. *)
            Hashtbl.reset dirty;
            None
        | Invoked _ | Recovery _ -> None)

(* P2, part 1: a crash obliges a recovery pass before any new invocation
   (and before the stream ends). *)
let crash_implies_recovery =
  eventually_within_era ~name:"crash-implies-recovery"
    ~trigger:(function
      | Crashed { era } ->
          Some (Printf.sprintf "crash in era %d awaits a recovery pass" era)
      | _ -> None)
    ~witness:(function Recovery _ -> true | _ -> false)
    ~deadline:(function Invoked _ -> true | _ -> false)

(* P2, part 2: a recovery pass that found interrupted frames must
   re-persist the repair — the answer / cleared-answer slot that the
   paper's protocol uses as its abort-or-complete marker — before that
   worker {e responds} again (or the stream ends).  The next [Invoked] is
   deliberately not a deadline: recovery repairs an interrupted call by
   re-invoking it from its persistent frame, so the invocation is part of
   the repair and the marker flush lands inside the re-run.  Any
   persisting access by the worker discharges: on the paper's stack every
   repair path ([return_and_pop], [clear_answer]) ends in a marker
   flush. *)
let recovery_repersists =
  {
    name = "recovery-repersists";
    instantiate =
      (fun () ->
        let owing : (int, unit) Hashtbl.t = Hashtbl.create 4 in
        let violate worker =
          Hashtbl.remove owing worker;
          Some
            (Printf.sprintf
               "worker %d recovered interrupted frames without re-persisting \
                an abort/answer marker"
               worker)
        in
        let step = function
          | Recovery { worker; frames } ->
              if frames > 0 then Hashtbl.replace owing worker ();
              None
          | Access { worker; access } ->
              if access.Crash.persists then Hashtbl.remove owing worker;
              None
          | Crashed _ ->
              (* A fresh crash voids the pass; part 1 re-arms. *)
              Hashtbl.reset owing;
              None
          | Responded { worker; _ } ->
              if Hashtbl.mem owing worker then violate worker else None
          | Invoked _ -> None
        in
        let finish () =
          Hashtbl.fold
            (fun w () best ->
              match best with Some b when b <= w -> best | _ -> Some w)
            owing None
          |> fun w -> Option.bind w violate
        in
        { step; finish });
  }

let crash_implies_recovery_repersists =
  conj ~name:"crash-implies-recovery-repersists"
    [ crash_implies_recovery; recovery_repersists ]

let all = [ response_implies_persist; crash_implies_recovery_repersists ]

let find n = List.find_opt (fun p -> p.name = n) all

(* Self-check seeding: hide every program-issued flush from the monitors.
   On a cache-managed workload the response-implies-persist monitor must
   then flag the first response — proving the oracle has teeth. *)
let sabotage_drop_flushes = function
  | Access { access = { Crash.kind = Crash.Flush; _ }; _ } -> None
  | ev -> Some ev

type checker = {
  feed : event -> unit;
  result : unit -> (string * string) option;
}

let run ?(sabotage = false) props =
  let ms =
    List.map (fun p -> (p.name, (p.instantiate () : monitor))) props
  in
  let failed = ref None in
  let latch name = function
    | Some msg when !failed = None -> failed := Some (name, msg)
    | _ -> ()
  in
  let feed ev =
    let ev = if sabotage then sabotage_drop_flushes ev else Some ev in
    match (ev, !failed) with
    | Some ev, None -> List.iter (fun (n, m) -> latch n (m.step ev)) ms
    | _ -> ()
  in
  let result () =
    if !failed = None then
      List.iter (fun (n, m) -> latch n (m.finish ())) ms;
    !failed
  in
  { feed; result }
