module Crash = Nvram.Crash

type footprint = {
  access : Crash.access option;
  reads : (int * int) list;
}

let empty = { access = None; reads = [] }

(* The read footprint of a transition is reported by the *next* point of
   the same execution; the final transition of a trace has no successor,
   so the explorer gives it every line — conservative, never unsound. *)
let universe = [ (0, max_int) ]

let of_point_choice (p : Coop.point) j =
  { access = List.assoc_opt j p.Coop.pending; reads = [] }

let ranges_overlap (a, b) (c, d) = a <= d && c <= b

let range_hits r ranges = List.exists (ranges_overlap r) ranges

let op_range f =
  match f.access with
  | None -> None
  | Some a -> Some (a.Crash.first_line, a.Crash.last_line)

(* Transitions in the cooperative scheduler are "execute the pending
   write-class op, then run device reads up to the next write-class
   entry": only write-class entries yield, so every store/flush/CAS sits
   at the head of its transition and every read belongs to the tail of
   one.  Two transitions of different workers commute unless some
   mutation of one touches lines the other mutates or reads; two reads
   always commute.  [access = None] is a worker-startup transition
   (reads only, no head op), not an unknown. *)
let dependent f1 f2 =
  let o1 = op_range f1 and o2 = op_range f2 in
  (match (o1, o2) with
  | Some r1, Some r2 -> ranges_overlap r1 r2
  | None, _ | _, None -> false)
  || (match o1 with Some r -> range_hits r f2.reads | None -> false)
  || match o2 with Some r -> range_hits r f1.reads | None -> false
