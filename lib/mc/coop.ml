module Crash = Nvram.Crash

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type decision = Run of int | Crash_here

type point = {
  index : int;
  op : int;
  enabled : int list;
  current : int option;
  pending : (int * Crash.access) list;
  prev_reads : (int * int) list;
}

type fiber =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Finished

let default_decision p =
  match p.current with
  | Some c when List.mem c p.enabled -> Run c
  | _ -> (
      match p.enabled with
      | j :: _ -> Run j
      | [] -> invalid_arg "Coop.default_decision: no enabled worker")

let spawn ~crash_ctl ~decide : Runtime.System.spawn =
 fun body workers ->
  let fibers = Array.init workers (fun i -> Not_started (fun () -> body i)) in
  (* Footprint of the persistence op each suspended fiber is about to
     execute — recorded by the hook at the yield, so resuming fiber [i]
     executes exactly the access [pending.(i)] describes.  [None] before a
     fiber's first yield (it has not reached a device op yet) and after it
     finishes. *)
  let pending = Array.make workers None in
  (* Device lines read during the step that just ran, collected from the
     controller's read log when the step returns; the next decision point
     reports them as [prev_reads] so the reduction can attribute them to
     the transition that just executed. *)
  let last_reads = ref [] in
  let enabled () =
    List.init workers Fun.id
    |> List.filter (fun i -> fibers.(i) <> Finished)
  in
  (* The hook performs [Yield] at every persistence-operation entry of the
     running fiber — and only of the fiber: it is installed around each
     step, so the orchestrator's own device operations (task-table scans,
     reclaim sweeps) never yield.  After a crash the guard keeps resumed
     fibers from yielding again: each dies at its next device operation
     ([Crash_now]) or runs to completion, so one resume drains it. *)
  let step i =
    let hook access =
      pending.(i) <- Some access;
      if not (Crash.crashed crash_ctl) then perform Yield
    in
    Crash.set_scheduler crash_ctl (Some hook);
    Fun.protect
      ~finally:(fun () ->
        (* Collect before uninstalling: [set_scheduler None] drops the
           read log. *)
        last_reads := Crash.take_reads crash_ctl;
        Crash.set_scheduler crash_ctl None)
      (fun () ->
        match fibers.(i) with
        | Finished -> ()
        | Suspended k -> continue k ()
        | Not_started f ->
            match_with f ()
              {
                retc =
                  (fun () ->
                    fibers.(i) <- Finished;
                    pending.(i) <- None);
                exnc =
                  (fun exn ->
                    fibers.(i) <- Finished;
                    pending.(i) <- None;
                    raise exn);
                effc =
                  (fun (type a) (eff : a Effect.t) ->
                    match eff with
                    | Yield ->
                        Some
                          (fun (k : (a, unit) continuation) ->
                            fibers.(i) <- Suspended k)
                    | _ -> None);
              })
  in
  let index = ref 0 in
  let current = ref None in
  let rec drain () =
    match enabled () with
    | [] -> ()
    | en ->
        List.iter step en;
        drain ()
  in
  let pending_of en =
    List.filter_map
      (fun i ->
        match pending.(i) with Some a -> Some (i, a) | None -> None)
      en
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | _ when Crash.crashed crash_ctl ->
        (* An externally armed plan (replay's [At_op]) fired inside a
           step: stop scheduling and let every fiber die. *)
        drain ()
    | en -> (
        let point =
          { index = !index; op = Crash.ops crash_ctl; enabled = en;
            current = !current; pending = pending_of en;
            prev_reads = !last_reads }
        in
        incr index;
        match decide point with
        | Run j ->
            if not (List.mem j en) then
              invalid_arg "Coop.spawn: decision ran a finished worker";
            current := Some j;
            step j;
            loop ()
        | Crash_here ->
            Crash.trigger crash_ctl;
            drain ())
  in
  loop ()
