(** Access footprints and the dependence relation for dynamic
    partial-order reduction (Flanagan & Godefroid, POPL 2005).

    A {e transition} of the cooperative scheduler ({!Coop}) is coarser
    than one device operation: choosing worker [j] executes the
    write-class operation [j] is suspended at, then lets [j] run — through
    any number of device {e reads} — until its next write-class entry.
    The reduction therefore describes a transition by a footprint: the
    head operation's access (from [Coop.point.pending]) plus the read
    ranges collected while the step ran (the next point's [prev_reads]).

    Soundness of the dependence test rests on the yield discipline: only
    stores, flushes and CAS yield ([Crash.sched_point]), reads never do
    ([Crash.note_read]), so a transition's only mutation is its head op
    and everything else it touches is in [reads]. *)

type footprint = {
  access : Nvram.Crash.access option;
      (** Head operation of the transition; [None] for worker-startup
          transitions, which execute no write-class op (their first one
          yields before taking effect). *)
  reads : (int * int) list;  (** Line ranges read by the transition. *)
}

val empty : footprint

val universe : (int * int) list
(** The every-line read set [[(0, max_int)]] — stands in for the unknown
    reads of a trace's final transition (no successor point reports
    them). *)

val of_point_choice : Coop.point -> int -> footprint
(** Footprint known {e at decision time} for choosing worker [j]: its
    pending access and no reads yet (reads are attributed when the step
    returns). *)

val ranges_overlap : int * int -> int * int -> bool
(** Inclusive line ranges share at least one line. *)

val dependent : footprint -> footprint -> bool
(** Whether two transitions (of different workers) may fail to commute:
    some head op of one overlaps the head op or the reads of the other.
    Read-read overlaps are independent.  Conservative where it must be —
    overlapping flushes are treated as dependent even though same-value
    write-backs commute. *)
