(** Systematic state-space exploration: interleaving and crash-point
    enumeration under iterative context bounding (CHESS-style; Musuvathi &
    Qadeer, PLDI 2007), reduced by default with dynamic partial-order
    reduction (Flanagan & Godefroid, POPL 2005) plus sleep sets.

    One {e execution} is a full crash-restart run of a workload under the
    cooperative scheduler ({!Coop}), driven by a {e decision vector}: the
    worker chosen at each persistence-operation scheduling point, or a
    crash injected there.  The explorer performs a stateless DFS over
    decision vectors — re-executing from scratch with a longer prefix each
    time — and covers

    - every interleaving whose number of {e preemptions} (switching away
      from a still-live worker) is at most the bound; switches at worker
      completion and the initial choice are free, as is crash injection;
    - for every reached scheduling point along the way, the single-crash
      vector that crashes there (post-crash recovery runs under the
      deterministic default schedule).

    With [por = true] (the default) the DFS walks one representative per
    Mazurkiewicz-trace equivalence class of the crash-free interleavings:
    each scheduling point carries the {e footprint} of the transition it
    starts (cache-line range and kind of the pending store, plus the lines
    read before the next point — see {!Coop.point} and {!Por}), and at
    backtrack time only race-reversing alternatives are pushed, with sleep
    sets suppressing commuting siblings.  Alternatives whose reversal would
    exceed the preemption bound are conservatively re-seeded at the latest
    earlier free-switch point (bounded-DPOR style; Coons, Musuvathi &
    McKinley, OOPSLA 2013), so bounding stays sound.  Crash placements are
    not reduced {e per walked trace} — every decision point of every
    explored interleaving still gets its crash leaf — but interleavings
    pruned as equivalent are pruned with their crash points: two equivalent
    crash-free traces can pass through distinct intermediate persistence
    states, so crash-state coverage under reduction is a heuristic, not a
    theorem (DESIGN.md §13).  [por = false] keeps the exhaustive
    enumeration; the differential tests run both and compare findings.

    Every terminal state passes through the fuzzer's oracles
    ([Fuzz.Harness]: recovery invariants, serializability for CAS
    workloads), then the trace-property monitors ({!Prop}, when given),
    then an optional user check; the first failure stops the search with a
    replayable schedule, and an exhausted search returns a certificate with
    the explored-state counts. *)

type config = {
  preempt_bound : int;  (** Maximum preemptions per interleaving. *)
  max_executions : int;
      (** Search budget; {!Budget_exhausted} when exceeded. *)
  max_points : int;
      (** Per-execution decision cap — a runaway guard, far above any
          finite workload.  Exceeding it ends the search with
          {!Budget_exhausted} carrying the stats so far (it must never
          surface as an exception or a spurious violation). *)
  device_size : int;  (** Fresh-device size per execution, bytes. *)
  flush_mode : Nvram.Pmem.flush_mode;
      (** Flush behaviour of every fresh device the search creates.
          Only observable for workload kinds running on a cached device
          ([Faulty], [Rcounter]); the rest are auto-flush. *)
  broken_drain : bool;
      (** Arm [Pmem.unsafe_break_drain] on every fresh device — for tests
          that must watch {!check_equivalence} catch a sabotaged
          coalescer. *)
  por : bool;
      (** Dynamic partial-order reduction (default [true]); [false] is the
          exhaustive brute-force enumeration. *)
}

val default_config : config
(** Preemption bound 2, 200k executions, 128 KiB device, eager flushing,
    drains intact, reduction on. *)

type stats = {
  executions : int;  (** Complete runs performed. *)
  points : int;  (** Scheduling decisions taken, summed over runs. *)
  crash_placements : int;  (** Runs whose vector injected a crash. *)
  deepest : int;  (** Longest recorded decision vector. *)
  races : int;
      (** Race reversals queued by the reduced search (backtrack-set
          insertions); 0 under brute force. *)
  sleep_skips : int;
      (** Subtrees skipped because a sleep set proved them equivalent to an
          explored sibling; 0 under brute force. *)
}

type violation = {
  reason : string;  (** Oracle or property failure message. *)
  schedule : Fuzz.Schedule.t;
      (** Replayable adversary: [interleave] prefix, the crash as an
          [At_op] era plan, the bound in [preempt], and — for the reduced
          search — [por]/[reversal] metadata recording which backtrack
          points produced it. *)
  outcome : Fuzz.Harness.outcome;
}

type verdict =
  | Certified of stats
      (** No violation anywhere within the bounds — the "no violation
          within bounds" certificate, quantified by {!stats}. *)
  | Violation of violation * stats
  | Budget_exhausted of stats

val explore :
  ?config:config ->
  ?check:(Fuzz.Harness.outcome -> (unit, string) result) ->
  ?props:Prop.t list ->
  ?prop_sabotage:bool ->
  Fuzz.Workload.t ->
  verdict
(** Deterministic: no randomness anywhere — same workload, same verdict,
    same counts, every run.  [props] (default none) are instantiated
    afresh for every execution and fed the typed event stream along the
    path; a monitor violation is reported as
    ["property <name>: <message>"], ranked after harness oracle failures
    and before the user [check].  [prop_sabotage] routes the stream
    through [Prop.sabotage_drop_flushes] first — the self-check that the
    property layer has teeth. *)

val replay : ?config:config -> Fuzz.Reproducer.t -> Fuzz.Harness.outcome
(** Re-execute a reproducer under the cooperative scheduler: follow the
    schedule's [interleave] prefix decision for decision (then the default
    policy), with the crash fired by the recorded [At_op] era plan.  Used
    by [crash_fuzzer --replay] and [model_check --replay] on reproducers
    that carry an interleaving. *)

val replay_checked :
  ?config:config ->
  ?props:Prop.t list ->
  ?prop_sabotage:bool ->
  Fuzz.Reproducer.t ->
  Fuzz.Harness.outcome * (string * string) option
(** {!replay}, with the trace-property monitors watching the replayed
    execution; returns the harness outcome and the first monitor violation
    as [(property name, message)], if any. *)

val runner :
  ?config:config ->
  unit ->
  ?sabotage:bool ->
  Fuzz.Workload.t ->
  Fuzz.Schedule.t ->
  Fuzz.Harness.outcome
(** [runner () workload schedule] executes a schedule the way it was
    found: through cooperative replay when it carries an [interleave]
    prefix (a plain [Fuzz.Harness.run] would spawn free-running domains
    and silently drop the prefix), through the plain harness otherwise.
    Shaped for [Fuzz.Shrink.run]'s [runner] parameter, so shrinking a
    model-checker reproducer measures the schedule it claims to. *)

val reproducer : workload:Fuzz.Workload.t -> violation -> Fuzz.Reproducer.t
(** Package a violation as a [Fuzz.Reproducer] artifact (standard line
    format, [interleave]/[preempt]/[por]/[reversal] lines included). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Eager/coalesced equivalence} *)

type equivalence_verdict =
  | Equivalent of { eager : stats; coalesced : stats; distinct_states : int }
      (** Every recovery state reachable under coalesced flushing (within
          the bounds) is also reachable under eager flushing, and both
          phases passed every oracle.  [distinct_states] is the size of the
          eager fingerprint set. *)
  | Divergent of violation * stats
      (** The coalesced phase reached a recovery state outside the eager
          set, or failed an oracle outright — either way the coalescer
          changed observable crash semantics, and the violation carries a
          replayable schedule. *)
  | Equivalence_inconclusive of string
      (** A phase exhausted its budget, or the eager phase failed its own
          oracles (the workload is broken independently of coalescing). *)

val check_equivalence :
  ?config:config ->
  ?broken_drain:bool ->
  ?props:Prop.t list ->
  Fuzz.Workload.t ->
  equivalence_verdict
(** [check_equivalence workload] runs the exhaustive search twice — once
    eager collecting the set of reachable recovery-outcome fingerprints
    (see [Fuzz.Harness.outcome]), once coalesced checking membership — and
    certifies the subset relation that makes flush coalescing sound:
    coalescing may only {e remove} reachable persistence states (a pending
    line dies at a crash where an eager flush had already persisted it),
    never add one.  [config]'s [flush_mode]/[broken_drain] fields are
    overridden per phase; [broken_drain] (default [false]) arms the
    sabotage hook in the {e coalesced} phase only, to demonstrate the check
    fires.  [props] are monitored in both phases.  Crash-point numbering
    and scheduling footprints are identical in both flush modes, so the two
    phases walk the same decision tree (reduced or not) and their stats are
    comparable.  Deterministic, like {!explore}. *)
