(** Systematic state-space exploration: exhaustive interleaving and
    crash-point enumeration under iterative context bounding (CHESS-style;
    Musuvathi & Qadeer, PLDI 2007).

    One {e execution} is a full crash-restart run of a workload under the
    cooperative scheduler ({!Coop}), driven by a {e decision vector}: the
    worker chosen at each persistence-operation scheduling point, or a
    crash injected there.  The explorer performs a stateless DFS over
    decision vectors — re-executing from scratch with a longer prefix each
    time — and enumerates

    - every interleaving whose number of {e preemptions} (switching away
      from a still-live worker) is at most the bound; switches at worker
      completion and the initial choice are free, as is crash injection;
    - for every reached scheduling point along the way, the single-crash
      vector that crashes there (post-crash recovery runs under the
      deterministic default schedule).

    Every terminal state passes through the fuzzer's oracles
    ([Fuzz.Harness]: recovery invariants, serializability for CAS
    workloads) plus an optional user check; the first failure stops the
    search with a replayable schedule, and an exhausted search returns a
    certificate with the explored-state counts. *)

type config = {
  preempt_bound : int;  (** Maximum preemptions per interleaving. *)
  max_executions : int;
      (** Search budget; {!Budget_exhausted} when exceeded. *)
  max_points : int;
      (** Per-execution decision cap — a runaway guard, far above any
          finite workload. *)
  device_size : int;  (** Fresh-device size per execution, bytes. *)
}

val default_config : config
(** Preemption bound 2, 200k executions, 128 KiB device. *)

type stats = {
  executions : int;  (** Complete runs performed. *)
  points : int;  (** Scheduling decisions taken, summed over runs. *)
  crash_placements : int;  (** Runs whose vector injected a crash. *)
  deepest : int;  (** Longest recorded decision vector. *)
}

type violation = {
  reason : string;  (** Oracle failure message. *)
  schedule : Fuzz.Schedule.t;
      (** Replayable adversary: [interleave] prefix, the crash as an
          [At_op] era plan, and the bound in [preempt]. *)
  outcome : Fuzz.Harness.outcome;
}

type verdict =
  | Certified of stats
      (** No violation anywhere within the bounds — the "no violation
          within bounds" certificate, quantified by {!stats}. *)
  | Violation of violation * stats
  | Budget_exhausted of stats

val explore :
  ?config:config ->
  ?check:(Fuzz.Harness.outcome -> (unit, string) result) ->
  Fuzz.Workload.t ->
  verdict
(** Deterministic: no randomness anywhere — same workload, same verdict,
    same counts, every run. *)

val replay : ?config:config -> Fuzz.Reproducer.t -> Fuzz.Harness.outcome
(** Re-execute a reproducer under the cooperative scheduler: follow the
    schedule's [interleave] prefix decision for decision (then the default
    policy), with the crash fired by the recorded [At_op] era plan.  Used
    by [crash_fuzzer --replay] and [model_check --replay] on reproducers
    that carry an interleaving. *)

val reproducer : workload:Fuzz.Workload.t -> violation -> Fuzz.Reproducer.t
(** Package a violation as a [Fuzz.Reproducer] artifact (standard line
    format, [interleave]/[preempt] lines included). *)

val pp_stats : Format.formatter -> stats -> unit
