(** Systematic state-space exploration: exhaustive interleaving and
    crash-point enumeration under iterative context bounding (CHESS-style;
    Musuvathi & Qadeer, PLDI 2007).

    One {e execution} is a full crash-restart run of a workload under the
    cooperative scheduler ({!Coop}), driven by a {e decision vector}: the
    worker chosen at each persistence-operation scheduling point, or a
    crash injected there.  The explorer performs a stateless DFS over
    decision vectors — re-executing from scratch with a longer prefix each
    time — and enumerates

    - every interleaving whose number of {e preemptions} (switching away
      from a still-live worker) is at most the bound; switches at worker
      completion and the initial choice are free, as is crash injection;
    - for every reached scheduling point along the way, the single-crash
      vector that crashes there (post-crash recovery runs under the
      deterministic default schedule).

    Every terminal state passes through the fuzzer's oracles
    ([Fuzz.Harness]: recovery invariants, serializability for CAS
    workloads) plus an optional user check; the first failure stops the
    search with a replayable schedule, and an exhausted search returns a
    certificate with the explored-state counts. *)

type config = {
  preempt_bound : int;  (** Maximum preemptions per interleaving. *)
  max_executions : int;
      (** Search budget; {!Budget_exhausted} when exceeded. *)
  max_points : int;
      (** Per-execution decision cap — a runaway guard, far above any
          finite workload. *)
  device_size : int;  (** Fresh-device size per execution, bytes. *)
  flush_mode : Nvram.Pmem.flush_mode;
      (** Flush behaviour of every fresh device the search creates.
          Only observable for workload kinds running on a cached device
          ([Faulty], [Rcounter]); the rest are auto-flush. *)
  broken_drain : bool;
      (** Arm [Pmem.unsafe_break_drain] on every fresh device — for tests
          that must watch {!check_equivalence} catch a sabotaged
          coalescer. *)
}

val default_config : config
(** Preemption bound 2, 200k executions, 128 KiB device, eager flushing,
    drains intact. *)

type stats = {
  executions : int;  (** Complete runs performed. *)
  points : int;  (** Scheduling decisions taken, summed over runs. *)
  crash_placements : int;  (** Runs whose vector injected a crash. *)
  deepest : int;  (** Longest recorded decision vector. *)
}

type violation = {
  reason : string;  (** Oracle failure message. *)
  schedule : Fuzz.Schedule.t;
      (** Replayable adversary: [interleave] prefix, the crash as an
          [At_op] era plan, and the bound in [preempt]. *)
  outcome : Fuzz.Harness.outcome;
}

type verdict =
  | Certified of stats
      (** No violation anywhere within the bounds — the "no violation
          within bounds" certificate, quantified by {!stats}. *)
  | Violation of violation * stats
  | Budget_exhausted of stats

val explore :
  ?config:config ->
  ?check:(Fuzz.Harness.outcome -> (unit, string) result) ->
  Fuzz.Workload.t ->
  verdict
(** Deterministic: no randomness anywhere — same workload, same verdict,
    same counts, every run. *)

val replay : ?config:config -> Fuzz.Reproducer.t -> Fuzz.Harness.outcome
(** Re-execute a reproducer under the cooperative scheduler: follow the
    schedule's [interleave] prefix decision for decision (then the default
    policy), with the crash fired by the recorded [At_op] era plan.  Used
    by [crash_fuzzer --replay] and [model_check --replay] on reproducers
    that carry an interleaving. *)

val reproducer : workload:Fuzz.Workload.t -> violation -> Fuzz.Reproducer.t
(** Package a violation as a [Fuzz.Reproducer] artifact (standard line
    format, [interleave]/[preempt] lines included). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Eager/coalesced equivalence} *)

type equivalence_verdict =
  | Equivalent of { eager : stats; coalesced : stats; distinct_states : int }
      (** Every recovery state reachable under coalesced flushing (within
          the bounds) is also reachable under eager flushing, and both
          phases passed every oracle.  [distinct_states] is the size of the
          eager fingerprint set. *)
  | Divergent of violation * stats
      (** The coalesced phase reached a recovery state outside the eager
          set, or failed an oracle outright — either way the coalescer
          changed observable crash semantics, and the violation carries a
          replayable schedule. *)
  | Equivalence_inconclusive of string
      (** A phase exhausted its budget, or the eager phase failed its own
          oracles (the workload is broken independently of coalescing). *)

val check_equivalence :
  ?config:config ->
  ?broken_drain:bool ->
  Fuzz.Workload.t ->
  equivalence_verdict
(** [check_equivalence workload] runs the exhaustive search twice — once
    eager collecting the set of reachable recovery-outcome fingerprints
    (see [Fuzz.Harness.outcome]), once coalesced checking membership — and
    certifies the subset relation that makes flush coalescing sound:
    coalescing may only {e remove} reachable persistence states (a pending
    line dies at a crash where an eager flush had already persisted it),
    never add one.  [config]'s [flush_mode]/[broken_drain] fields are
    overridden per phase; [broken_drain] (default [false]) arms the
    sabotage hook in the {e coalesced} phase only, to demonstrate the check
    fires.  Deterministic, like {!explore}. *)
