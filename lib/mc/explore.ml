module Crash = Nvram.Crash
module Pmem = Nvram.Pmem
module Workload = Fuzz.Workload
module Schedule = Fuzz.Schedule
module Harness = Fuzz.Harness
module Reproducer = Fuzz.Reproducer

type config = {
  preempt_bound : int;
  max_executions : int;
  max_points : int;
  device_size : int;
  flush_mode : Pmem.flush_mode;
  broken_drain : bool;
  por : bool;
}

let default_config =
  {
    preempt_bound = 2;
    max_executions = 200_000;
    max_points = 10_000;
    (* Each execution formats a fresh device; keep it small.  128 KiB
       comfortably fits the superblock, a handful of 4 KiB worker stacks,
       the task table and the structures of every workload kind. *)
    device_size = 1 lsl 17;
    flush_mode = Pmem.Eager;
    broken_drain = false;
    por = true;
  }

type stats = {
  executions : int;
  points : int;
  crash_placements : int;
  deepest : int;
  races : int;
  sleep_skips : int;
}

type violation = {
  reason : string;
  schedule : Schedule.t;
  outcome : Harness.outcome;
}

type verdict =
  | Certified of stats
  | Violation of violation * stats
  | Budget_exhausted of stats

(* One stateless execution: follow [prefix] decision by decision, then
   extend with the non-preempting default policy, recording every
   pre-crash decision.  Executions are deterministic (single thread, no
   sleep-yield, no RNG), so re-running a prefix reproduces its parent's
   decisions exactly — the standard stateless-DFS invariant.

   A trace longer than [max_points] sets [exhausted] instead of raising:
   an exception here would unwind through the harness's generic handler
   and come back as a spurious [Fail] verdict — the checker must report
   [Budget_exhausted], not crash or cry wolf (the bug this fixes).

   When [props] are given, the execution also feeds the trace-property
   checker: footprint [Access] events at each decision (the op the chosen
   worker executes on resume), crash events from the harness observer, and
   invocation/response/recovery events from the runtime probe — all
   synchronous on the single cooperative thread, so stream order is
   execution order. *)
let run_execution ~config ~workload ?(props = []) ?(prop_sabotage = false)
    prefix =
  let checker =
    if props = [] then None else Some (Prop.run ~sabotage:prop_sabotage props)
  in
  let emit ev = match checker with None -> () | Some c -> c.Prop.feed ev in
  let emit_access (p : Coop.point) = function
    | Coop.Run j -> (
        match List.assoc_opt j p.Coop.pending with
        (* Synthetic scheduler-only accesses (negative lines: work-queue
           pops) exist for the reduction, not for the monitors. *)
        | Some access when access.Crash.first_line >= 0 ->
            emit (Prop.Access { worker = j; access })
        | Some _ | None -> ())
    | Coop.Crash_here -> ()
  in
  let trace = ref [] in
  let n = ref 0 in
  let crash_injected = ref false in
  let exhausted = ref false in
  let decide p =
    if !crash_injected || !exhausted then begin
      let d = Coop.default_decision p in
      emit_access p d;
      d
    end
    else if !n >= config.max_points then begin
      exhausted := true;
      Coop.default_decision p
    end
    else begin
      let d =
        if !n < Array.length prefix then
          match prefix.(!n) with
          | Coop.Run j when not (List.mem j p.Coop.enabled) ->
              (* Deterministic re-execution should make this impossible;
                 degrade to the default rather than wedge the run. *)
              Coop.default_decision p
          | d -> d
        else Coop.default_decision p
      in
      trace := (p, d) :: !trace;
      incr n;
      (match d with Coop.Crash_here -> crash_injected := true | _ -> ());
      emit_access p d;
      d
    end
  in
  let spawn pmem = Coop.spawn ~crash_ctl:(Pmem.crash_ctl pmem) ~decide in
  let run () =
    Harness.run ~spawn ~device_size:config.device_size
      ~flush_mode:config.flush_mode ~break_drain:config.broken_drain
      ~observer:(function
        | Runtime.Driver.Crash_fired { era; _ } -> emit (Prop.Crashed { era })
        | _ -> ())
      workload Schedule.none
  in
  let outcome =
    match checker with
    | None -> run ()
    | Some _ ->
        Runtime.Exec.set_probe
          (Some
             (function
             | Runtime.Exec.Op_invoked { worker; func_id } ->
                 emit (Prop.Invoked { worker; func_id })
             | Runtime.Exec.Op_responded { worker; func_id } ->
                 emit (Prop.Responded { worker; func_id })
             | Runtime.Exec.Recovery_pass { worker; frames } ->
                 emit (Prop.Recovery { worker; frames })));
        Fun.protect
          ~finally:(fun () -> Runtime.Exec.set_probe None)
          run
  in
  let prop_failure =
    match checker with None -> None | Some c -> c.Prop.result ()
  in
  (Array.of_list (List.rev !trace), outcome, !exhausted, prop_failure)

let is_preemption (p : Coop.point) j =
  match p.current with
  | Some c -> c <> j && List.mem c p.enabled
  | None -> false

let schedule_of_trace ~config trace =
  let decisions = Array.map snd trace in
  let interleave =
    Array.to_list decisions
    |> List.filter_map (function
         | Coop.Run j -> Some j
         | Coop.Crash_here -> None)
  in
  let eras =
    if Array.length trace = 0 then []
    else
      let p, d = trace.(Array.length trace - 1) in
      match d with
      | Coop.Crash_here -> [ Crash.At_op (p.Coop.op + 1) ]
      | Coop.Run _ -> []
  in
  {
    Schedule.none with
    Schedule.eras;
    interleave;
    preempt = Some config.preempt_bound;
    por = config.por;
  }

(* Verdict of one terminal state, in severity order: the harness's own
   oracles first (a [Fail]/[Fatal] is a finding whatever else happened),
   then the along-the-path property monitors, then the user check. *)
let failure_of ~check outcome prop_failure =
  match outcome.Harness.verdict with
  | Harness.Fail msg -> Some msg
  | Harness.Fatal msg ->
      (* The model checker injects no media faults, so an unrecoverable
         image is always a finding. *)
      Some ("fatal: " ^ msg)
  | Harness.Pass -> (
      match prop_failure with
      | Some (prop, msg) -> Some (Printf.sprintf "property %s: %s" prop msg)
      | None -> (
          match check outcome with Ok () -> None | Error msg -> Some msg))

(* ------------------------------------------------------------------ *)
(* Brute force: enumerate every interleaving within the preemption bound
   and every crash placement (CHESS-style iterative context bounding). *)

let explore_brute ~config ~check ~props ~prop_sabotage workload =
  let executions = ref 0 in
  let points = ref 0 in
  let crash_placements = ref 0 in
  let deepest = ref 0 in
  let stats () =
    {
      executions = !executions;
      points = !points;
      crash_placements = !crash_placements;
      deepest = !deepest;
      races = 0;
      sleep_skips = 0;
    }
  in
  let stack = Stack.create () in
  Stack.push [||] stack;
  let result = ref None in
  while Option.is_none !result && not (Stack.is_empty stack) do
    if !executions >= config.max_executions then
      result := Some (Budget_exhausted (stats ()))
    else begin
      let prefix = Stack.pop stack in
      let trace, outcome, exhausted, prop_failure =
        run_execution ~config ~workload ~props ~prop_sabotage prefix
      in
      incr executions;
      points := !points + Array.length trace;
      deepest := max !deepest (Array.length trace);
      if
        Array.length prefix > 0
        && prefix.(Array.length prefix - 1) = Coop.Crash_here
      then incr crash_placements;
      if exhausted then result := Some (Budget_exhausted (stats ()))
      else
        match failure_of ~check outcome prop_failure with
        | Some reason ->
            result :=
              Some
                (Violation
                   ( {
                       reason;
                       schedule = schedule_of_trace ~config trace;
                       outcome;
                     },
                     stats () ))
        | None ->
            (* Alternatives at every decision index not fixed by the prefix.
               A prefix ending in [Crash_here] records nothing beyond itself
               (post-crash scheduling is the deterministic default), so
               crashed vectors are leaves and each decision vector is
               explored exactly once. *)
            let decisions = Array.map snd trace in
            let preempts = ref 0 in
            Array.iteri
              (fun i (p, chosen) ->
                if i >= Array.length prefix then begin
                  (* Single-crash placement at this point. *)
                  Stack.push
                    (Array.append (Array.sub decisions 0 i)
                       [| Coop.Crash_here |])
                    stack;
                  (* Iterative context bounding: a switch away from a live
                     worker spends one preemption; crash placements and
                     forced switches are free. *)
                  List.iter
                    (fun j ->
                      let cost = if is_preemption p j then 1 else 0 in
                      if
                        chosen <> Coop.Run j
                        && !preempts + cost <= config.preempt_bound
                      then
                        Stack.push
                          (Array.append (Array.sub decisions 0 i)
                             [| Coop.Run j |])
                          stack)
                    p.Coop.enabled
                end;
                match chosen with
                | Coop.Run j -> if is_preemption p j then incr preempts
                | Coop.Crash_here -> ())
              trace
    end
  done;
  match !result with None -> Certified (stats ()) | Some verdict -> verdict

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction with sleep sets (Flanagan &
   Godefroid), bound-aware in the BPOR style (Coons, Musuvathi &
   McKinley): the DFS walks one representative per equivalence class of
   crash-free interleavings, reversing only transitions that actually
   raced, and places the single-crash leaf at every decision point of
   every walked trace. *)

type frame = {
  point : Coop.point;
  preempts_before : int;  (* preemptions spent strictly before this frame *)
  mutable chosen : int;
  mutable fp : Por.footprint;  (* of the executed transition *)
  mutable backtrack : int list;  (* race-reversing alternatives to run *)
  mutable done_ : int list;  (* workers whose subtree here is complete *)
  mutable sleep : (int * Por.footprint) list;
  mutable reversed : bool;  (* [chosen] came from a backtrack *)
}

let explore_dpor ~config ~check ~props ~prop_sabotage workload =
  let executions = ref 0 in
  let points = ref 0 in
  let crash_placements = ref 0 in
  let deepest = ref 0 in
  let races = ref 0 in
  let sleep_skips = ref 0 in
  let stats () =
    {
      executions = !executions;
      points = !points;
      crash_placements = !crash_placements;
      deepest = !deepest;
      races = !races;
      sleep_skips = !sleep_skips;
    }
  in
  let frames : frame array ref = ref [||] in
  let result = ref None in
  let reversals upto =
    List.filteri (fun i _ -> i < upto) (Array.to_list !frames)
    |> List.mapi (fun i f -> (i, f.reversed))
    |> List.filter_map (fun (i, r) -> if r then Some i else None)
  in
  let with_por_metadata upto schedule =
    { schedule with Schedule.reversals = reversals upto }
  in
  (* Run one execution, account for it, and check its terminal state.
     Returns the trace on success, [None] once [result] is set. *)
  let execute ?(crash_leaf = false) prefix =
    if !executions >= config.max_executions then begin
      result := Some (Budget_exhausted (stats ()));
      None
    end
    else begin
      let trace, outcome, exhausted, prop_failure =
        run_execution ~config ~workload ~props ~prop_sabotage prefix
      in
      incr executions;
      points := !points + Array.length trace;
      deepest := max !deepest (Array.length trace);
      if crash_leaf then incr crash_placements;
      if exhausted then begin
        result := Some (Budget_exhausted (stats ()));
        None
      end
      else
        match failure_of ~check outcome prop_failure with
        | Some reason ->
            let upto =
              if crash_leaf then Array.length trace - 1
              else Array.length trace
            in
            result :=
              Some
                (Violation
                   ( {
                       reason;
                       schedule =
                         with_por_metadata upto
                           (schedule_of_trace ~config trace);
                       outcome;
                     },
                     stats () ));
            None
        | None -> Some trace
    end
  in
  let prefix_to b extra =
    Array.init (b + 1) (fun k ->
        if k < b then Coop.Run (!frames).(k).chosen else extra)
  in
  (* Crash leaf: the state before frame [i]'s transition, crashed.  The
     prefix does not depend on what [i] chooses, so one leaf per frame. *)
  let crash_leaf i = ignore (execute ~crash_leaf:true (prefix_to i Coop.Crash_here)) in
  (* Record the race-reversing alternative [w] at frame [j], unless the
     subtree already covers it (chosen/done/queued) or the sleep set
     proves it redundant.  If scheduling [w] at [j] would blow the
     preemption budget, re-seed it at the latest earlier point where the
     switch is free (BPOR's conservative addition) so bounding stays
     sound. *)
  let rec add_backtrack j w =
    let f = (!frames).(j) in
    if List.mem w f.point.Coop.enabled then begin
      let cost = if is_preemption f.point w then 1 else 0 in
      if f.preempts_before + cost <= config.preempt_bound then begin
        if
          w <> f.chosen
          && (not (List.mem w f.done_))
          && not (List.mem w f.backtrack)
        then begin
          if List.exists (fun (sw, _) -> sw = w) f.sleep then
            incr sleep_skips
          else begin
            f.backtrack <- w :: f.backtrack;
            incr races
          end
        end
      end
      else begin
        (* Find the latest k <= j where running [w] costs no preemption:
           nothing chosen yet, [w] itself was current, or the current
           worker had finished. *)
        let k = ref (j - 1) in
        let free k =
          let p = (!frames).(k).point in
          match p.Coop.current with
          | None -> true
          | Some c -> c = w || not (List.mem c p.Coop.enabled)
        in
        while !k >= 0 && not (free !k) do
          decr k
        done;
        if !k >= 0 && !k < j then add_backtrack !k w
      end
    end
  in
  (* Sync the frame array with a fresh trace: frame [b] (the re-chosen
     one, -1 initially) gets its real footprint (head access + the reads
     the step performed, visible as the next point's [prev_reads]); new
     frames are created for the fresh suffix, inheriting the parent's
     sleep set filtered down to entries still independent of the parent's
     transition.  The final transition of a trace has no successor point
     to report its reads, so it conservatively reads everything. *)
  let sync_frames trace b =
    let len = Array.length trace in
    let fp_at i chosen =
      let p, _ = trace.(i) in
      let access = List.assoc_opt chosen p.Coop.pending in
      let reads =
        if i + 1 < len then (fst trace.(i + 1)).Coop.prev_reads
        else Por.universe
      in
      { Por.access; reads }
    in
    if b >= 0 then begin
      let f = (!frames).(b) in
      f.fp <- fp_at b f.chosen
    end;
    let fresh = ref [] in
    for i = max 0 (b + 1) to len - 1 do
      let p, d = trace.(i) in
      let chosen =
        match d with
        | Coop.Run j -> j
        | Coop.Crash_here ->
            (* Unreachable: DFS prefixes and the default policy never
               crash. *)
            invalid_arg "Explore.sync_frames: crash in a DFS trace"
      in
      let preempts_before, sleep =
        if i = 0 then (0, [])
        else
          let parent =
            if i - 1 <= b then (!frames).(i - 1)
            else List.hd !fresh (* previous fresh frame *)
          in
          let cost =
            if is_preemption parent.point parent.chosen then 1 else 0
          in
          let sleep =
            List.filter
              (fun (w, wfp) ->
                w <> parent.chosen && not (Por.dependent wfp parent.fp))
              parent.sleep
          in
          (parent.preempts_before + cost, sleep)
      in
      fresh :=
        {
          point = p;
          preempts_before;
          chosen;
          fp = fp_at i chosen;
          backtrack = [];
          done_ = [];
          sleep;
          reversed = false;
        }
        :: !fresh
    done;
    frames :=
      Array.append
        (Array.sub !frames 0 (min (b + 1) (Array.length !frames)))
        (Array.of_list (List.rev !fresh))
  in
  (* Race detection for every fresh transition [i]: the latest earlier
     transition of a different worker it does not commute with is a race;
     the reversal is scheduled at that point. *)
  let detect_races from =
    let fs = !frames in
    for i = max 0 from to Array.length fs - 1 do
      let rec scan j =
        if j >= 0 then
          if
            fs.(j).chosen <> fs.(i).chosen
            && Por.dependent fs.(j).fp fs.(i).fp
          then add_backtrack j fs.(i).chosen
          else scan (j - 1)
      in
      scan (i - 1)
    done
  in
  let process b trace =
    sync_frames trace b;
    (* Crash leaves for states reached for the first time; frame [b]'s
       leaf (if any) ran when the frame was created. *)
    let i = ref (max 0 (b + 1)) in
    while Option.is_none !result && !i < Array.length !frames do
      crash_leaf !i;
      incr i
    done;
    if Option.is_none !result then detect_races b
  in
  (* Initial walk: the default schedule end to end ([b = -1]: no frame to
     refresh, every frame is fresh). *)
  (match execute [||] with
  | Some trace -> process (-1) trace
  | None -> ());
  let rec next_branch () =
    (* Deepest frame with something left to try; everything above it is
       fully explored and its current subtree is complete. *)
    let fs = !frames in
    let b = ref (Array.length fs - 1) in
    while !b >= 0 && fs.(!b).backtrack = [] do
      decr b
    done;
    if !b < 0 then None
    else begin
      let f = fs.(!b) in
      f.sleep <- (f.chosen, f.fp) :: f.sleep;
      f.done_ <- f.chosen :: f.done_;
      match f.backtrack with
      | [] -> assert false
      | w :: rest ->
          f.backtrack <- rest;
          if List.exists (fun (sw, _) -> sw = w) f.sleep then begin
            (* Slept since it was queued: a completed sibling proved any
               [w]-subtree here redundant. *)
            incr sleep_skips;
            next_branch ()
          end
          else begin
            frames := Array.sub fs 0 (!b + 1);
            f.chosen <- w;
            f.reversed <- true;
            Some !b
          end
    end
  in
  let continue = ref true in
  while !continue && Option.is_none !result do
    match next_branch () with
    | None -> continue := false
    | Some b -> (
        match execute (prefix_to b (Coop.Run (!frames).(b).chosen)) with
        | Some trace -> process b trace
        | None -> ())
  done;
  match !result with None -> Certified (stats ()) | Some verdict -> verdict

let explore ?(config = default_config) ?(check = fun _ -> Ok ())
    ?(props = []) ?(prop_sabotage = false) workload =
  if config.por then explore_dpor ~config ~check ~props ~prop_sabotage workload
  else explore_brute ~config ~check ~props ~prop_sabotage workload

(* ------------------------------------------------------------------ *)

let replay_spawn ?(emit = fun (_ : Prop.event) -> ()) (schedule : Schedule.t)
    pmem =
  let remaining = ref schedule.Schedule.interleave in
  let decide (p : Coop.point) =
    let d =
      match !remaining with
      | j :: rest when List.mem j p.Coop.enabled ->
          remaining := rest;
          Coop.Run j
      | _ :: rest ->
          (* Divergence from the recorded prefix (hand-edited file?):
             degrade to the default policy rather than fail. *)
          remaining := rest;
          Coop.default_decision p
      | [] -> Coop.default_decision p
    in
    (match d with
    | Coop.Run j -> (
        match List.assoc_opt j p.Coop.pending with
        | Some access when access.Crash.first_line >= 0 ->
            emit (Prop.Access { worker = j; access })
        | Some _ | None -> ())
    | Coop.Crash_here -> ());
    d
  in
  Coop.spawn ~crash_ctl:(Pmem.crash_ctl pmem) ~decide

let replay_checked ?(config = default_config) ?(props = [])
    ?(prop_sabotage = false) (repro : Reproducer.t) =
  let checker =
    if props = [] then None else Some (Prop.run ~sabotage:prop_sabotage props)
  in
  let emit ev = match checker with None -> () | Some c -> c.Prop.feed ev in
  let run () =
    Harness.run
      ~spawn:(replay_spawn ~emit repro.Reproducer.schedule)
      ~device_size:config.device_size ~flush_mode:config.flush_mode
      ~break_drain:config.broken_drain
      ~observer:(function
        | Runtime.Driver.Crash_fired { era; _ } -> emit (Prop.Crashed { era })
        | _ -> ())
      repro.Reproducer.workload repro.Reproducer.schedule
  in
  let outcome =
    match checker with
    | None -> run ()
    | Some _ ->
        Runtime.Exec.set_probe
          (Some
             (function
             | Runtime.Exec.Op_invoked { worker; func_id } ->
                 emit (Prop.Invoked { worker; func_id })
             | Runtime.Exec.Op_responded { worker; func_id } ->
                 emit (Prop.Responded { worker; func_id })
             | Runtime.Exec.Recovery_pass { worker; frames } ->
                 emit (Prop.Recovery { worker; frames })));
        Fun.protect
          ~finally:(fun () -> Runtime.Exec.set_probe None)
          run
  in
  let prop_failure =
    match checker with None -> None | Some c -> c.Prop.result ()
  in
  (outcome, prop_failure)

let replay ?config (repro : Reproducer.t) = fst (replay_checked ?config repro)

(* Route a schedule through the right executor: cooperative replay when it
   carries an interleaving (a plain [Harness.run] would spawn free-running
   domains and silently ignore it), the plain harness otherwise.  The
   shrinker injects this so its candidates measure what they claim to. *)
let runner ?(config = default_config) () ?sabotage workload
    (schedule : Schedule.t) =
  if schedule.Schedule.interleave = [] then
    Harness.run ?sabotage workload schedule
  else
    Harness.run ?sabotage ~spawn:(replay_spawn schedule)
      ~device_size:config.device_size ~flush_mode:config.flush_mode
      ~break_drain:config.broken_drain workload schedule

let reproducer ~workload (v : violation) =
  {
    Reproducer.seed = None;
    case = None;
    workload;
    schedule = v.schedule;
    expected = Some v.reason;
    trace = [];
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d executions (%d with a crash), %d decision points, deepest trace %d"
    s.executions s.crash_placements s.points s.deepest;
  if s.races > 0 || s.sleep_skips > 0 then
    Format.fprintf fmt ", %d race reversals, %d sleep-set skips" s.races
      s.sleep_skips

(* ------------------------------------------------------------------ *)

type equivalence_verdict =
  | Equivalent of { eager : stats; coalesced : stats; distinct_states : int }
  | Divergent of violation * stats
  | Equivalence_inconclusive of string

(* Two-phase exhaustive equivalence: phase 1 explores the workload on an
   eager device and collects the set of reachable recovery-outcome
   fingerprints; phase 2 re-explores on a coalescing device and demands
   every fingerprint it reaches be a member of phase 1's set.  Soundness
   note: subset (not equality) is the right relation — coalescing can only
   {e remove} persistence states (pending lines die at a crash that an
   eager flush would have persisted), and the removed states collapse onto
   other eager-reachable states, never onto new ones.  A broken coalescer
   surfaces either as a phase-2 oracle failure (stale data the workload
   notices) or as a fingerprint outside the eager set; both become
   [Divergent].

   Both phases walk the same decision tree whether reduced or brute: the
   scheduler's footprints and op numbering are identical in both flush
   modes (crash.mli, pmem.ml), so the DPOR races and sleeps resolve
   identically and the two phases stay state-for-state comparable. *)
let check_equivalence ?(config = default_config) ?(broken_drain = false)
    ?(props = []) workload =
  let eager_states = Hashtbl.create 64 in
  let record (o : Harness.outcome) =
    if o.Harness.fingerprint <> "" then
      Hashtbl.replace eager_states o.Harness.fingerprint ();
    Ok ()
  in
  let eager_config =
    { config with flush_mode = Pmem.Eager; broken_drain = false }
  in
  match explore ~config:eager_config ~check:record ~props workload with
  | Violation (v, _) ->
      Equivalence_inconclusive
        ("eager phase violates its own oracles: " ^ v.reason)
  | Budget_exhausted _ ->
      Equivalence_inconclusive "eager phase exhausted its execution budget"
  | Certified eager_stats -> (
      let member (o : Harness.outcome) =
        if
          o.Harness.fingerprint = ""
          || Hashtbl.mem eager_states o.Harness.fingerprint
        then Ok ()
        else
          Error
            (Printf.sprintf
               "coalesced recovery state %S is not reachable under eager \
                flushing"
               o.Harness.fingerprint)
      in
      let coalesced_config =
        { config with flush_mode = Pmem.Coalesced; broken_drain }
      in
      match explore ~config:coalesced_config ~check:member ~props workload with
      | Certified coalesced_stats ->
          Equivalent
            {
              eager = eager_stats;
              coalesced = coalesced_stats;
              distinct_states = Hashtbl.length eager_states;
            }
      | Violation (v, s) -> Divergent (v, s)
      | Budget_exhausted _ ->
          Equivalence_inconclusive
            "coalesced phase exhausted its execution budget")
