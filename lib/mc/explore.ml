module Crash = Nvram.Crash
module Pmem = Nvram.Pmem
module Workload = Fuzz.Workload
module Schedule = Fuzz.Schedule
module Harness = Fuzz.Harness
module Reproducer = Fuzz.Reproducer

type config = {
  preempt_bound : int;
  max_executions : int;
  max_points : int;
  device_size : int;
  flush_mode : Pmem.flush_mode;
  broken_drain : bool;
}

let default_config =
  {
    preempt_bound = 2;
    max_executions = 200_000;
    max_points = 10_000;
    (* Each execution formats a fresh device; keep it small.  128 KiB
       comfortably fits the superblock, a handful of 4 KiB worker stacks,
       the task table and the structures of every workload kind. *)
    device_size = 1 lsl 17;
    flush_mode = Pmem.Eager;
    broken_drain = false;
  }

type stats = {
  executions : int;
  points : int;
  crash_placements : int;
  deepest : int;
}

type violation = {
  reason : string;
  schedule : Schedule.t;
  outcome : Harness.outcome;
}

type verdict =
  | Certified of stats
  | Violation of violation * stats
  | Budget_exhausted of stats

exception Too_many_points

(* One stateless execution: follow [prefix] decision by decision, then
   extend with the non-preempting default policy, recording every
   pre-crash decision.  Executions are deterministic (single thread, no
   sleep-yield, no RNG), so re-running a prefix reproduces its parent's
   decisions exactly — the standard stateless-DFS invariant. *)
let run_execution ~config ~workload prefix =
  let trace = ref [] in
  let n = ref 0 in
  let crash_injected = ref false in
  let decide p =
    if !crash_injected then Coop.default_decision p
    else begin
      if !n >= config.max_points then raise Too_many_points;
      let d =
        if !n < Array.length prefix then
          match prefix.(!n) with
          | Coop.Run j when not (List.mem j p.Coop.enabled) ->
              (* Deterministic re-execution should make this impossible;
                 degrade to the default rather than wedge the run. *)
              Coop.default_decision p
          | d -> d
        else Coop.default_decision p
      in
      trace := (p, d) :: !trace;
      incr n;
      (match d with Coop.Crash_here -> crash_injected := true | _ -> ());
      d
    end
  in
  let spawn pmem = Coop.spawn ~crash_ctl:(Pmem.crash_ctl pmem) ~decide in
  let outcome =
    Harness.run ~spawn ~device_size:config.device_size
      ~flush_mode:config.flush_mode ~break_drain:config.broken_drain workload
      Schedule.none
  in
  (Array.of_list (List.rev !trace), outcome)

let is_preemption (p : Coop.point) j =
  match p.current with
  | Some c -> c <> j && List.mem c p.enabled
  | None -> false

let schedule_of_trace ~config trace =
  let decisions = Array.map snd trace in
  let interleave =
    Array.to_list decisions
    |> List.filter_map (function
         | Coop.Run j -> Some j
         | Coop.Crash_here -> None)
  in
  let eras =
    if Array.length trace = 0 then []
    else
      let p, d = trace.(Array.length trace - 1) in
      match d with
      | Coop.Crash_here -> [ Crash.At_op (p.Coop.op + 1) ]
      | Coop.Run _ -> []
  in
  {
    Schedule.none with
    Schedule.eras;
    interleave;
    preempt = Some config.preempt_bound;
  }

let explore ?(config = default_config) ?(check = fun _ -> Ok ()) workload =
  let executions = ref 0 in
  let points = ref 0 in
  let crash_placements = ref 0 in
  let deepest = ref 0 in
  let stats () =
    {
      executions = !executions;
      points = !points;
      crash_placements = !crash_placements;
      deepest = !deepest;
    }
  in
  let stack = Stack.create () in
  Stack.push [||] stack;
  let result = ref None in
  while Option.is_none !result && not (Stack.is_empty stack) do
    if !executions >= config.max_executions then
      result := Some (Budget_exhausted (stats ()))
    else begin
      let prefix = Stack.pop stack in
      let trace, outcome = run_execution ~config ~workload prefix in
      incr executions;
      points := !points + Array.length trace;
      deepest := max !deepest (Array.length trace);
      if
        Array.length prefix > 0
        && prefix.(Array.length prefix - 1) = Coop.Crash_here
      then incr crash_placements;
      let failure =
        match outcome.Harness.verdict with
        | Harness.Fail msg -> Some msg
        | Harness.Fatal msg ->
            (* The model checker injects no media faults, so an
               unrecoverable image is always a finding. *)
            Some ("fatal: " ^ msg)
        | Harness.Pass -> (
            match check outcome with Ok () -> None | Error msg -> Some msg)
      in
      match failure with
      | Some reason ->
          result :=
            Some
              (Violation
                 ( {
                     reason;
                     schedule = schedule_of_trace ~config trace;
                     outcome;
                   },
                   stats () ))
      | None ->
          (* Alternatives at every decision index not fixed by the prefix.
             A prefix ending in [Crash_here] records nothing beyond itself
             (post-crash scheduling is the deterministic default), so
             crashed vectors are leaves and each decision vector is
             explored exactly once. *)
          let decisions = Array.map snd trace in
          let preempts = ref 0 in
          Array.iteri
            (fun i (p, chosen) ->
              if i >= Array.length prefix then begin
                (* Single-crash placement at this point. *)
                Stack.push
                  (Array.append (Array.sub decisions 0 i)
                     [| Coop.Crash_here |])
                  stack;
                (* Iterative context bounding: a switch away from a live
                   worker spends one preemption; crash placements and
                   forced switches are free. *)
                List.iter
                  (fun j ->
                    let cost = if is_preemption p j then 1 else 0 in
                    if
                      chosen <> Coop.Run j
                      && !preempts + cost <= config.preempt_bound
                    then
                      Stack.push
                        (Array.append (Array.sub decisions 0 i)
                           [| Coop.Run j |])
                        stack)
                  p.Coop.enabled
              end;
              match chosen with
              | Coop.Run j -> if is_preemption p j then incr preempts
              | Coop.Crash_here -> ())
            trace
    end
  done;
  match !result with None -> Certified (stats ()) | Some verdict -> verdict

let replay_spawn (schedule : Schedule.t) pmem =
  let remaining = ref schedule.Schedule.interleave in
  let decide p =
    match !remaining with
    | j :: rest when List.mem j p.Coop.enabled ->
        remaining := rest;
        Coop.Run j
    | _ :: rest ->
        (* Divergence from the recorded prefix (hand-edited file?):
           degrade to the default policy rather than fail. *)
        remaining := rest;
        Coop.default_decision p
    | [] -> Coop.default_decision p
  in
  Coop.spawn ~crash_ctl:(Pmem.crash_ctl pmem) ~decide

let replay ?(config = default_config) (repro : Reproducer.t) =
  Harness.run
    ~spawn:(replay_spawn repro.Reproducer.schedule)
    ~device_size:config.device_size ~flush_mode:config.flush_mode
    ~break_drain:config.broken_drain repro.Reproducer.workload
    repro.Reproducer.schedule

let reproducer ~workload (v : violation) =
  {
    Reproducer.seed = None;
    case = None;
    workload;
    schedule = v.schedule;
    expected = Some v.reason;
    trace = [];
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d executions (%d with a crash), %d decision points, deepest trace %d"
    s.executions s.crash_placements s.points s.deepest

(* ------------------------------------------------------------------ *)

type equivalence_verdict =
  | Equivalent of { eager : stats; coalesced : stats; distinct_states : int }
  | Divergent of violation * stats
  | Equivalence_inconclusive of string

(* Two-phase exhaustive equivalence: phase 1 explores the workload on an
   eager device and collects the set of reachable recovery-outcome
   fingerprints; phase 2 re-explores on a coalescing device and demands
   every fingerprint it reaches be a member of phase 1's set.  Soundness
   note: subset (not equality) is the right relation — coalescing can only
   {e remove} persistence states (pending lines die at a crash that an
   eager flush would have persisted), and the removed states collapse onto
   other eager-reachable states, never onto new ones.  A broken coalescer
   surfaces either as a phase-2 oracle failure (stale data the workload
   notices) or as a fingerprint outside the eager set; both become
   [Divergent]. *)
let check_equivalence ?(config = default_config) ?(broken_drain = false)
    workload =
  let eager_states = Hashtbl.create 64 in
  let record (o : Harness.outcome) =
    if o.Harness.fingerprint <> "" then
      Hashtbl.replace eager_states o.Harness.fingerprint ();
    Ok ()
  in
  let eager_config =
    { config with flush_mode = Pmem.Eager; broken_drain = false }
  in
  match explore ~config:eager_config ~check:record workload with
  | Violation (v, _) ->
      Equivalence_inconclusive
        ("eager phase violates its own oracles: " ^ v.reason)
  | Budget_exhausted _ ->
      Equivalence_inconclusive "eager phase exhausted its execution budget"
  | Certified eager_stats -> (
      let member (o : Harness.outcome) =
        if
          o.Harness.fingerprint = ""
          || Hashtbl.mem eager_states o.Harness.fingerprint
        then Ok ()
        else
          Error
            (Printf.sprintf
               "coalesced recovery state %S is not reachable under eager \
                flushing"
               o.Harness.fingerprint)
      in
      let coalesced_config =
        { config with flush_mode = Pmem.Coalesced; broken_drain }
      in
      match explore ~config:coalesced_config ~check:member workload with
      | Certified coalesced_stats ->
          Equivalent
            {
              eager = eager_stats;
              coalesced = coalesced_stats;
              distinct_states = Hashtbl.length eager_states;
            }
      | Violation (v, s) -> Divergent (v, s)
      | Budget_exhausted _ ->
          Equivalence_inconclusive
            "coalesced phase exhausted its execution budget")
