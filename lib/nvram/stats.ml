type t = {
  reads : int Atomic.t;
  writes : int Atomic.t;
  flushes : int Atomic.t;
  flushes_elided : int Atomic.t;
  drains : int Atomic.t;
  lines_flushed : int Atomic.t;
  crashes : int Atomic.t;
  lines_lost : int Atomic.t;
  lines_survived : int Atomic.t;
  torn_lines : int Atomic.t;
  bits_flipped : int Atomic.t;
}

let create () =
  {
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    flushes = Atomic.make 0;
    flushes_elided = Atomic.make 0;
    drains = Atomic.make 0;
    lines_flushed = Atomic.make 0;
    crashes = Atomic.make 0;
    lines_lost = Atomic.make 0;
    lines_survived = Atomic.make 0;
    torn_lines = Atomic.make 0;
    bits_flipped = Atomic.make 0;
  }

let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes
let flushes t = Atomic.get t.flushes
let flushes_elided t = Atomic.get t.flushes_elided
let drains t = Atomic.get t.drains
let lines_flushed t = Atomic.get t.lines_flushed
let crashes t = Atomic.get t.crashes
let lines_lost t = Atomic.get t.lines_lost
let lines_survived t = Atomic.get t.lines_survived
let torn_lines t = Atomic.get t.torn_lines
let bits_flipped t = Atomic.get t.bits_flipped

let add counter n = ignore (Atomic.fetch_and_add counter n)
let incr_reads t = add t.reads 1
let incr_writes t = add t.writes 1
let incr_flushes t = add t.flushes 1
let incr_flushes_elided t = add t.flushes_elided 1
let incr_drains t = add t.drains 1
let incr_lines_flushed t n = add t.lines_flushed n
let incr_crashes t = add t.crashes 1
let incr_lines_lost t n = add t.lines_lost n
let incr_lines_survived t n = add t.lines_survived n
let incr_torn_lines t = add t.torn_lines 1
let incr_bits_flipped t n = add t.bits_flipped n

let reset t =
  let zero counter = Atomic.set counter 0 in
  zero t.reads;
  zero t.writes;
  zero t.flushes;
  zero t.flushes_elided;
  zero t.drains;
  zero t.lines_flushed;
  zero t.crashes;
  zero t.lines_lost;
  zero t.lines_survived;
  zero t.torn_lines;
  zero t.bits_flipped

let pp fmt t =
  Format.fprintf fmt
    "reads=%d writes=%d flushes=%d flushes_elided=%d drains=%d \
     lines_flushed=%d crashes=%d lines_lost=%d lines_survived=%d \
     torn_lines=%d bits_flipped=%d"
    (reads t) (writes t) (flushes t) (flushes_elided t) (drains t)
    (lines_flushed t) (crashes t) (lines_lost t) (lines_survived t)
    (torn_lines t) (bits_flipped t)
