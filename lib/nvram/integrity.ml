let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let fnv64_sub acc b ~pos ~len =
  let h = ref acc in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        prime
  done;
  !h

let fnv64_init = offset_basis
let fnv64 b ~pos ~len = fnv64_sub offset_basis b ~pos ~len

let fnv64_byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xFF))) prime

let fnv64_int64 acc v =
  let h = ref acc in
  for i = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (i * 8)) 0xFFL)
    in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime
  done;
  !h

let code_of_int64 v =
  let h = fnv64_int64 offset_basis v in
  (* xor-fold 64 -> 8 bits *)
  let rec fold h n = if n = 0 then h else fold Int64.(logxor h (shift_right_logical h 8)) (n - 1) in
  let c = Int64.to_int (Int64.logand (fold h 7) 0xFFL) in
  if c = 0 then 1 else c

let verification_enabled = Atomic.make true
let enabled () = Atomic.get verification_enabled
let unsafe_set_enabled b = Atomic.set verification_enabled b
