exception Crash_now
exception Thread_killed

type plan =
  | Never
  | At_op of int
  | Random of { seed : int; probability : float }

type access_kind = Write | Flush | Cas

type access = {
  kind : access_kind;
  first_line : int;
  last_line : int;
  persists : bool;
}

type t = {
  mutable plan : plan;
  mutable rng : Random.State.t;
  counter : int Atomic.t;
  crashed : bool Atomic.t;
  (* individual-crash plan: its own counter and PRNG; one-shot *)
  mutable kill_plan : plan;
  mutable kill_rng : Random.State.t;
  mutable kill_counter : int;
  mutable kill_count : int;
  (* optional cooperative-scheduler callback, consulted at the entry of every
     persistence operation (lib/mc).  A plain mutable field: it is only ever
     set by single-threaded model-checking runs, never under contention. *)
  mutable scheduler : (access -> unit) option;
  (* cache-line ranges read by the device since the scheduler callback last
     collected them; only maintained while a scheduler is installed, so the
     free-running read path pays one branch and nothing else. *)
  mutable read_log : (int * int) list;
  mu : Mutex.t;
}

let rng_of_plan = function
  | Random { seed; _ } -> Random.State.make [| seed |]
  | Never | At_op _ -> Random.State.make [| 0 |]

let create ?(plan = Never) () =
  {
    plan;
    rng = rng_of_plan plan;
    counter = Atomic.make 0;
    crashed = Atomic.make false;
    kill_plan = Never;
    kill_rng = rng_of_plan Never;
    kill_counter = 0;
    kill_count = 0;
    scheduler = None;
    read_log = [];
    mu = Mutex.create ();
  }

let set_scheduler t f =
  t.scheduler <- f;
  t.read_log <- []

(* The record is built only when a callback is installed: the free-running
   hot path (every persistence op of every benchmark) allocates nothing. *)
let sched_point t ~kind ~first_line ~last_line ~persists =
  match t.scheduler with
  | None -> ()
  | Some f -> f { kind; first_line; last_line; persists }

let note_read t ~first_line ~last_line =
  match t.scheduler with
  | None -> ()
  | Some _ -> t.read_log <- (first_line, last_line) :: t.read_log

let take_reads t =
  match t.read_log with
  | [] -> []
  | log ->
      t.read_log <- [];
      log

let arm t plan =
  Mutex.protect t.mu (fun () ->
      t.plan <- plan;
      t.rng <- rng_of_plan plan;
      Atomic.set t.counter 0)

let crashed t = Atomic.get t.crashed
let check t = if crashed t then raise Crash_now
let trigger t = Atomic.set t.crashed true

let fire t =
  trigger t;
  raise Crash_now

let fires_now ~counter ~rng = function
  | Never -> false
  | At_op n -> counter >= n
  | Random { probability; _ } -> Random.State.float rng 1.0 < probability

let is_never = function Never -> true | At_op _ | Random _ -> false

let step t =
  check t;
  if is_never t.plan && is_never t.kill_plan then
    (* Fast path: nothing is armed, so the only bookkeeping is the exact op
       count.  The lock-free increment matters: every worker consults this
       one shared controller on every persistence operation, so a mutex
       here is a global serialisation point — it alone anti-scaled the
       multicore benchmarks.  Arming a plan happens-before the workers
       start (domain spawn), so a racy [Never] read is never stale during a
       planned run. *)
    ignore (Atomic.fetch_and_add t.counter 1 : int)
  else begin
    (* The mutex serialises the plan state and the PRNGs; the crashed flag
       stays an atomic so that [check] on the hot path of other threads is
       lock-free. *)
    let verdict =
      Mutex.protect t.mu (fun () ->
          if crashed t then `System
          else begin
            let counter = Atomic.fetch_and_add t.counter 1 + 1 in
            if fires_now ~counter ~rng:t.rng t.plan then `System
            else begin
              t.kill_counter <- t.kill_counter + 1;
              if
                fires_now ~counter:t.kill_counter ~rng:t.kill_rng t.kill_plan
              then begin
                (* one-shot: exactly one thread dies per arming *)
                t.kill_plan <- Never;
                t.kill_count <- t.kill_count + 1;
                `Thread
              end
              else `None
            end
          end)
    in
    match verdict with
    | `None -> ()
    | `System -> fire t
    | `Thread -> raise Thread_killed
  end

let reset t =
  Mutex.protect t.mu (fun () ->
      t.plan <- Never;
      t.rng <- rng_of_plan Never;
      Atomic.set t.counter 0;
      t.kill_plan <- Never;
      t.kill_rng <- rng_of_plan Never;
      t.kill_counter <- 0;
      t.kill_count <- 0;
      Atomic.set t.crashed false)

let ops t = Atomic.get t.counter
let plan t = Mutex.protect t.mu (fun () -> t.plan)

let pp_plan fmt = function
  | Never -> Format.pp_print_string fmt "never"
  | At_op n -> Format.fprintf fmt "at-op %d" n
  | Random { seed; probability } ->
      Format.fprintf fmt "random %d %.6f" seed probability

let plan_to_string p = Format.asprintf "%a" pp_plan p

let plan_of_string s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | [ "never" ] -> Ok Never
  | [ "at-op"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (At_op n)
      | Some _ -> Error "at-op index must be >= 1"
      | None -> Error (Printf.sprintf "at-op: not an integer: %S" n))
  | [ "random"; seed; probability ] -> (
      match (int_of_string_opt seed, float_of_string_opt probability) with
      | Some seed, Some probability when probability >= 0. && probability <= 1.
        ->
          Ok (Random { seed; probability })
      | Some _, Some _ -> Error "random: probability must be in [0,1]"
      | _ -> Error (Printf.sprintf "random: bad seed/probability in %S" s))
  | _ -> Error (Printf.sprintf "unknown crash plan %S" s)

type fault_plan = { tear : plan; bitflip : plan; fault_seed : int }

let no_faults = { tear = Never; bitflip = Never; fault_seed = 0 }

let has_faults { tear; bitflip; _ } =
  (not (is_never tear)) || not (is_never bitflip)

let pp_fault_plan fmt { tear; bitflip; fault_seed } =
  Format.fprintf fmt "tear %a | bitflip %a | fault-seed %d" pp_plan tear
    pp_plan bitflip fault_seed

let arm_kill t plan =
  Mutex.protect t.mu (fun () ->
      t.kill_plan <- plan;
      t.kill_rng <- rng_of_plan plan;
      t.kill_counter <- 0)

let kills_fired t = Mutex.protect t.mu (fun () -> t.kill_count)
