type storage =
  | Memory
  | File of { fd : Unix.file_descr; sync : bool; persist_delay : float }

type t = { data : bytes; storage : storage; io_mu : Mutex.t }
(* [io_mu] serialises the lseek+write pairs of the file backend: worker
   domains persist disjoint cache lines in parallel on the striped device,
   and the shared file descriptor's position is process-global state. *)

let memory ~size =
  { data = Bytes.make size '\000'; storage = Memory; io_mu = Mutex.create () }

let file ?(sync = false) ?(persist_delay = 0.) ~path ~size () =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let existing = (Unix.fstat fd).Unix.st_size in
  if existing <> 0 && existing <> size then begin
    Unix.close fd;
    invalid_arg
      (Printf.sprintf "Backend.file: %s has size %d, expected %d" path
         existing size)
  end;
  if existing = 0 then Unix.ftruncate fd size;
  let data = Bytes.make size '\000' in
  let rec read_all pos =
    if pos < size then begin
      let n = Unix.read fd data pos (size - pos) in
      if n > 0 then read_all (pos + n)
    end
  in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  read_all 0;
  { data; storage = File { fd; sync; persist_delay }; io_mu = Mutex.create () }

let size t = Bytes.length t.data

let check_range t off len =
  if off < 0 || len < 0 || off + len > size t then
    invalid_arg
      (Printf.sprintf "Backend: range [%d, %d) outside image of size %d" off
         (off + len) (size t))

let read t ~off ~len =
  check_range t off len;
  Bytes.sub t.data off len

let blit_to t ~off ~dst ~dst_off ~len =
  check_range t off len;
  Bytes.blit t.data off dst dst_off len

let write_through fd ~sync ~off ~data ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec write_all pos =
    if pos < len then begin
      let n = Unix.write fd data (off + pos) (len - pos) in
      write_all (pos + n)
    end
  in
  write_all 0;
  if sync then Unix.fsync fd

let persist t ~off ~src ~src_off ~len =
  check_range t off len;
  Bytes.blit src src_off t.data off len;
  match t.storage with
  | Memory -> ()
  | File { fd; sync; persist_delay } ->
      (* The latency models per-persist device time, so it is paid outside
         the descriptor lock: persists of disjoint lines overlap their
         waits, only the write-through itself is serialised. *)
      if persist_delay > 0. then Unix.sleepf persist_delay;
      Mutex.protect t.io_mu (fun () ->
          write_through fd ~sync ~off ~data:t.data ~len)

let flip_bit t ~off ~bit =
  check_range t off 1;
  if bit < 0 || bit > 7 then invalid_arg "Backend.flip_bit: bit out of range";
  let v = Char.code (Bytes.get t.data off) lxor (1 lsl bit) in
  Bytes.set t.data off (Char.chr v);
  match t.storage with
  | Memory -> ()
  | File { fd; sync; _ } ->
      Mutex.protect t.io_mu (fun () ->
          write_through fd ~sync ~off ~data:t.data ~len:1)

let close t =
  match t.storage with Memory -> () | File { fd; _ } -> Unix.close fd

let is_file t = match t.storage with Memory -> false | File _ -> true
