type policy = Lose_all | Lose_none | Lose_random of int
type flush_mode = Eager | Coalesced

(* Per-domain pending-line log for the coalesced mode: the order in which
   this domain's flush calls first marked each line pending.  A drain
   persists a whole log in that (flush) order, so the persisted set at any
   moment is a prefix of the flush sequence — the property that makes every
   coalesced persistence state one the eager mode can also reach.  The log
   mutex is never taken while a stripe is held (flushes append after
   releasing their stripes; drains take [log_mu] first, then stripes one at
   a time), so the two lock families cannot deadlock. *)
type pending_log = {
  log_mu : Mutex.t;
  mutable log_lines : int array;
  mutable log_len : int;
}

let log_buckets = 16 (* power of two, like Obs.Counters *)

(* Media-fault state (see [arm_faults]).  Owned by the device, not by
   [Crash]: [Crash.reset] models a machine restart, and restarting a
   machine does not repair its media — fault plans must survive every era
   of a run.  All mutable state is guarded by [fault_mu]; the [armed] flag
   is read racily on hot paths, which is sound because arming
   happens-before the workers start (same argument as [Crash.step]'s
   fast path). *)
type faults = {
  fault_mu : Mutex.t;
  mutable fplan : Crash.fault_plan;
  mutable armed : bool;
  mutable tear_rng : Random.State.t;
  mutable bitflip_rng : Random.State.t;
  mutable crash_events : int;  (* tear plans count crash events *)
  mutable restarts : int;  (* bitflip plans count restarts *)
  mutable targets : (int * int) array;
      (* bitflip target regions (offset, length); [||] = whole device *)
}

type t = {
  line_size : int;
  size : int;
  lines : int;
  policy : policy;
  auto_flush : bool;
  flush_mode : flush_mode;
  backend : Backend.t;
  volatile : bytes;  (* visible content: persistent image + unflushed writes *)
  dirty : bool array;  (* per cache line *)
  pending : bool array;
      (* per cache line, coalesced mode only: flushed but not yet drained.
         Invariant: pending implies dirty (guarded by the line's stripe). *)
  logs : pending_log array;  (* indexed by domain id land (log_buckets-1) *)
  mutable drain_breakage : int;
      (* test hook ([unsafe_break_drain]): number of upcoming line drains to
         silently forget — clear the tags without persisting — so tests can
         demonstrate that the model checker's equivalence check fires on a
         broken drain.  0 in real use. *)
  crash_ctl : Crash.t;
  stats : Stats.t;
  faults : faults;
  crash_rng : Random.State.t;
  yield_probability : float;
  yield_state : int Atomic.t;  (* lock-free LCG for scheduling jitter *)
  stripes : Mutex.t array;
      (* Striped device lock: stripe [s] guards every cache line [l] with
         [l mod Array.length stripes = s] — its bytes in [volatile], its
         [dirty] bit and its persistence.  Operations on disjoint lines
         proceed in parallel; an operation touching several lines holds all
         covering stripes for its whole duration (acquired in ascending
         stripe order, so the locking is deadlock-free), which preserves the
         linearizability of the old single-mutex device. *)
}

let default_stripes = 256

let create ?(line_size = 64) ?(policy = Lose_all) ?(auto_flush = false)
    ?(flush_mode = Eager) ?(yield_probability = 0.)
    ?(stripes = default_stripes) ?backend ~size () =
  Layout.check_line_size line_size;
  if size <= 0 then invalid_arg "Pmem.create: size must be positive";
  if stripes < 1 then invalid_arg "Pmem.create: stripes must be >= 1";
  let backend =
    match backend with Some b -> b | None -> Backend.memory ~size
  in
  if Backend.size backend <> size then
    invalid_arg "Pmem.create: backend size mismatch";
  let volatile = Bytes.make size '\000' in
  Backend.blit_to backend ~off:0 ~dst:volatile ~dst_off:0 ~len:size;
  let lines = (size + line_size - 1) / line_size in
  let crash_rng =
    match policy with
    | Lose_random seed -> Random.State.make [| seed |]
    | Lose_all | Lose_none -> Random.State.make [| 0 |]
  in
  (* Power of two, and never more stripes than lines. *)
  let nstripes =
    let target = max 1 (min stripes lines) in
    let n = ref 1 in
    while !n * 2 <= target do
      n := !n * 2
    done;
    !n
  in
  {
    line_size;
    size;
    lines;
    policy;
    auto_flush;
    flush_mode;
    backend;
    volatile;
    dirty = Array.make lines false;
    pending = Array.make lines false;
    logs =
      Array.init log_buckets (fun _ ->
          { log_mu = Mutex.create (); log_lines = [||]; log_len = 0 });
    drain_breakage = 0;
    crash_ctl = Crash.create ();
    stats = Stats.create ();
    faults =
      {
        fault_mu = Mutex.create ();
        fplan = Crash.no_faults;
        armed = false;
        tear_rng = Random.State.make [| 0 |];
        bitflip_rng = Random.State.make [| 0 |];
        crash_events = 0;
        restarts = 0;
        targets = [||];
      };
    crash_rng;
    yield_probability;
    yield_state = Atomic.make 0x9E3779B9;
    stripes = Array.init nstripes (fun _ -> Mutex.create ());
  }

let size t = t.size
let line_size t = t.line_size
let auto_flush t = t.auto_flush
let flush_mode t = t.flush_mode
let crash_ctl t = t.crash_ctl
let stats t = t.stats
let backend t = t.backend
let stripe_count t = Array.length t.stripes

let check_range t off len =
  let off = Offset.to_int off in
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Pmem: range [%d, %d) outside device of size %d" off
         (off + len) t.size)

(* Scheduling jitter: on a single-CPU host, OS timeslices are thousands of
   simulated operations long, so concurrent workers would never interleave
   within the short windows concurrency bugs live in.  Descheduling the
   calling OS thread with some probability after each tracked operation
   restores fine-grained interleaving; a short [Unix.sleepf] deschedules
   across worker domains, which [Thread.yield] (domain-local) does not.
   Deliberately racy LCG: determinism is not wanted here. *)
let maybe_yield t =
  if t.yield_probability > 0. then begin
    let s = Atomic.get t.yield_state in
    let s' = (s * 0x5851F42D4C957F2D) + 0x14057B7EF767814F in
    Atomic.set t.yield_state s';
    let u = float_of_int ((s' lsr 11) land 0xFFFFFF) /. 16777216.0 in
    if u < t.yield_probability then Unix.sleepf 1e-6
  end

(* Fibonacci-hash the line index onto a stripe.  The naive [line mod
   stripes] map aliases badly in practice: worker-private regions are
   usually a round number of lines apart (a power-of-two stride), so every
   worker's hot line 0 lands on the *same* stripe and the "striped" lock
   degenerates to a single shared mutex.  Mixing the bits first spreads
   any stride pattern across all stripes. *)
let stripe_of t line =
  (line * 0x2545F4914F6CDD1D) lsr 40 land (Array.length t.stripes - 1)

(* Write-amplification accounting: payload bytes requested vs cache-line
   bytes dirtied.  Only called when recording is enabled. *)
let record_write_counters t ~off ~len =
  if len = 0 then
    Obs.Counters.record_write Obs.Probe.counters ~payload:0 ~amplified:0
  else begin
    let first, last = Layout.lines_covering ~line_size:t.line_size off ~len in
    Obs.Counters.record_write Obs.Probe.counters ~payload:len
      ~amplified:((last - first + 1) * t.line_size)
  end

(* Run [f] holding the stripes of lines [first..last].  Stripes are locked
   in ascending index order and released in reverse, also on exceptions
   (crash signals fire mid-operation by design). *)
let with_lines t ~first ~last f =
  let n = Array.length t.stripes in
  let result =
    if first = last then Mutex.protect t.stripes.(stripe_of t first) f
    else begin
      let needed =
        if last - first + 1 >= n then Array.make n true
        else begin
          let needed = Array.make n false in
          for l = first to last do
            needed.(stripe_of t l) <- true
          done;
          needed
        end
      in
      for s = 0 to n - 1 do
        if needed.(s) then Mutex.lock t.stripes.(s)
      done;
      Fun.protect
        ~finally:(fun () ->
          for s = n - 1 downto 0 do
            if needed.(s) then Mutex.unlock t.stripes.(s)
          done)
        f
    end
  in
  maybe_yield t;
  result

(* Whole-device operations (crash, peeks, dirty-line census) serialise
   against everything by holding every stripe. *)
let with_all_lines t f = with_lines t ~first:0 ~last:(t.lines - 1) f

(* Persist one cache line: atomic with respect to crashes.  Clears both
   tags — a persisted line is neither dirty nor pending. *)
let persist_line t index =
  let start = index * t.line_size in
  let len = min t.line_size (t.size - start) in
  Backend.persist t.backend ~off:start ~src:t.volatile ~src_off:start ~len;
  t.dirty.(index) <- false;
  t.pending.(index) <- false

(* {2 Media faults: torn lines and bit rot} *)

let arm_faults ?(targets = [||]) t fplan =
  let f = t.faults in
  Mutex.protect f.fault_mu (fun () ->
      Array.iter
        (fun (off, len) ->
          if off < 0 || len <= 0 || off + len > t.size then
            invalid_arg "Pmem.arm_faults: target region outside device")
        targets;
      f.fplan <- fplan;
      f.tear_rng <- Random.State.make [| fplan.Crash.fault_seed; 1 |];
      f.bitflip_rng <- Random.State.make [| fplan.Crash.fault_seed; 2 |];
      f.crash_events <- 0;
      f.restarts <- 0;
      f.targets <- targets;
      f.armed <- Crash.has_faults fplan)

let fault_plan t = Mutex.protect t.faults.fault_mu (fun () -> t.faults.fplan)

let plan_fires ~counter ~rng = function
  | Crash.Never -> false
  | Crash.At_op n -> counter >= n
  | Crash.Random { probability; _ } ->
      Random.State.float rng 1.0 < probability

let note_fault_injected () =
  if Obs.Config.enabled () then
    Obs.Counters.incr_faults_injected Obs.Probe.counters

(* Tear the persist of line [index] that the crash just interrupted.  The
   in-flight bytes are [seg_len] bytes at device offset [seg_start], with
   their {e new} content at [src.(src_off ..)]: a seeded prefix of the new
   content reaches the persistent image, a seeded handful of the following
   bytes are shredded with garbage, and the rest keep their old persisted
   value — the three states a byte of an interrupted write-back can land
   in.  The caller holds the stripe of [index]; the torn image is copied
   back into the volatile cache and the line marked clean so the crash's
   lose/survive pass cannot overwrite the tear with intact content. *)
let tear_line_locked t ~index ~seg_start ~seg_len ~src ~src_off ~rng =
  let keep = Random.State.int rng (seg_len + 1) in
  if keep > 0 then
    Backend.persist t.backend ~off:seg_start ~src ~src_off ~len:keep;
  let shred = Random.State.int rng (min 8 (seg_len - keep) + 1) in
  if shred > 0 then begin
    let garbage = Bytes.init shred (fun _ -> Char.chr (Random.State.int rng 256)) in
    Backend.persist t.backend ~off:(seg_start + keep) ~src:garbage ~src_off:0
      ~len:shred
  end;
  (* Volatile must agree with the torn image: the machine is dead, and the
     reboot path re-reads the backend anyway, but a racing op between the
     tear and [crash t] must not observe pre-tear bytes as clean. *)
  let line_start = index * t.line_size in
  let line_len = min t.line_size (t.size - line_start) in
  Backend.blit_to t.backend ~off:line_start ~dst:t.volatile
    ~dst_off:line_start ~len:line_len;
  t.dirty.(index) <- false;
  t.pending.(index) <- false;
  Stats.incr_torn_lines t.stats;
  note_fault_injected ()

(* Crash-scheduler step at a persistence point covering line [index], with
   tearing: when this step is the one that {e fires} the crash (not a
   later step observing an already-crashed device) it counts one crash
   event, and the armed tear plan decides whether the interrupted persist
   of [index] is torn.  Caller holds the stripe of [index]. *)
let step_fault t ~index ~seg_start ~seg_len ~src ~src_off =
  let f = t.faults in
  if not f.armed then Crash.step t.crash_ctl
  else begin
    let was_crashed = Crash.crashed t.crash_ctl in
    match Crash.step t.crash_ctl with
    | () -> ()
    | exception Crash.Crash_now when not was_crashed ->
        let tear =
          Mutex.protect f.fault_mu (fun () ->
              f.crash_events <- f.crash_events + 1;
              if
                seg_len > 0
                && plan_fires ~counter:f.crash_events ~rng:f.tear_rng
                     f.fplan.Crash.tear
              then Some f.tear_rng
              else None)
        in
        (match tear with
        | Some rng ->
            tear_line_locked t ~index ~seg_start ~seg_len ~src ~src_off ~rng
        | None -> ());
        raise Crash.Crash_now
  end

(* Bit rot between eras: flip seeded persisted bits inside the configured
   target regions.  Runs on [restart], i.e. with the machine quiescent —
   every worker died with [Crash_now]; the stripe lock still makes each
   flip atomic against stragglers. *)
let apply_bitflips t =
  let f = t.faults in
  let flips =
    Mutex.protect f.fault_mu (fun () ->
        f.restarts <- f.restarts + 1;
        if
          not
            (plan_fires ~counter:f.restarts ~rng:f.bitflip_rng
               f.fplan.Crash.bitflip)
        then [||]
        else begin
          let rng = f.bitflip_rng in
          let n = 1 + Random.State.int rng 3 in
          Array.init n (fun _ ->
              let off =
                if Array.length f.targets = 0 then
                  Random.State.int rng t.size
                else begin
                  let region, len =
                    f.targets.(Random.State.int rng (Array.length f.targets))
                  in
                  region + Random.State.int rng len
                end
              in
              (off, Random.State.int rng 8))
        end)
  in
  Array.iter
    (fun (off, bit) ->
      let index = off / t.line_size in
      with_lines t ~first:index ~last:index (fun () ->
          Backend.flip_bit t.backend ~off ~bit;
          Bytes.set t.volatile off
            (Char.chr
               (Char.code (Bytes.get t.volatile off) lxor (1 lsl bit))));
      Stats.incr_bits_flipped t.stats 1;
      note_fault_injected ())
    flips

let inject_bitflip t ~off ~bit =
  check_range t off 1;
  let off = Offset.to_int off in
  let index = off / t.line_size in
  with_lines t ~first:index ~last:index (fun () ->
      Backend.flip_bit t.backend ~off ~bit;
      Bytes.set t.volatile off
        (Char.chr (Char.code (Bytes.get t.volatile off) lxor (1 lsl bit))));
  Stats.incr_bits_flipped t.stats 1

(* {2 Coalesced-mode pending logs and drains} *)

let my_log t = t.logs.((Domain.self () :> int) land (log_buckets - 1))

(* Record a newly-pending line in the calling domain's log.  Called with no
   stripe held (see the lock-order note on [pending_log]); the amortised
   growth keeps the steady-state append allocation-free. *)
let log_append t index =
  let log = my_log t in
  Mutex.lock log.log_mu;
  let cap = Array.length log.log_lines in
  if log.log_len = cap then begin
    let bigger = Array.make (max 64 (2 * cap)) 0 in
    Array.blit log.log_lines 0 bigger 0 log.log_len;
    log.log_lines <- bigger
  end;
  log.log_lines.(log.log_len) <- index;
  log.log_len <- log.log_len + 1;
  Mutex.unlock log.log_mu

(* Drain one pending log: persist its still-pending lines in first-flush
   order and empty it.  Entries whose line is no longer pending (persisted
   meanwhile by an auto-flush write, another drain, or a crash) are
   skipped.  A drain contains no [Crash.step]: it is atomic with respect to
   the crash plan of the draining domain, so it only moves the device
   {e toward} the fully-persisted state — it can remove reachable
   post-crash states (lines that would have been lost survive) but never
   create one the eager mode could not reach.  Returns the number of lines
   drained.  Caller must hold no stripe lock. *)
let drain_log t log =
  Mutex.lock log.log_mu;
  let drained = ref 0 in
  (match
     for k = 0 to log.log_len - 1 do
       let index = log.log_lines.(k) in
       let mu = t.stripes.(stripe_of t index) in
       Mutex.lock mu;
       (match
          if t.pending.(index) then begin
            if t.drain_breakage > 0 then begin
              (* Broken write-back (test hook): drop the tags without
                 persisting.  The runtime now believes the line is
                 persistent while the image still holds the old bytes. *)
              t.drain_breakage <- t.drain_breakage - 1;
              t.pending.(index) <- false;
              t.dirty.(index) <- false
            end
            else begin
              persist_line t index;
              Stats.incr_lines_flushed t.stats 1
            end;
            incr drained
          end
        with
       | () -> Mutex.unlock mu
       | exception e ->
           Mutex.unlock mu;
           raise e)
     done;
     log.log_len <- 0
   with
  | () -> Mutex.unlock log.log_mu
  | exception e ->
      Mutex.unlock log.log_mu;
      raise e);
  !drained

(* One drain event = one moment the device wrote pending lines back; only
   events that persisted something count, so an empty barrier is free. *)
let note_drain t ~lines =
  if lines > 0 then begin
    Stats.incr_drains t.stats;
    if Obs.Config.enabled () then
      Obs.Counters.record_drain Obs.Probe.counters ~lines
  end

let drain_own t = note_drain t ~lines:(drain_log t (my_log t))

let drain_every_log t =
  let lines = ref 0 in
  Array.iter (fun log -> lines := !lines + drain_log t log) t.logs;
  note_drain t ~lines:!lines

(* Dependent read: in coalesced mode, reading a pending line is a persist
   barrier (FliT's flush-on-shared-read rule) — the reader may act on the
   value, so the value must be persistent before it is returned.  The
   pre-lock tag check is deliberately racy: missing a concurrent mark only
   delays the drain to the next barrier, and a stale positive drains early;
   both are sound because drains only persist.  Drain own log first (the
   common case — a domain reading its own recent writes), then everyone's
   if the line is still pending under another domain's log. *)
let read_drain t ~first ~last =
  let rec any_pending i = i <= last && (t.pending.(i) || any_pending (i + 1)) in
  if any_pending first then begin
    drain_own t;
    if any_pending first then drain_every_log t
  end

(* Persist (or auto-flush) the lines covering [off, off+len), consulting the
   crash scheduler once per line so a crash can land between lines.  Caller
   holds the covering stripes.  Returns the number of lines persisted. *)
let flush_lines_locked t ~off ~len =
  (* inline [Layout.lines_covering]: returning the pair would allocate *)
  let first = Offset.to_int off / t.line_size in
  let last = (Offset.to_int off + len - 1) / t.line_size in
  let persisted = ref 0 in
  for index = first to last do
    (if t.faults.armed then begin
       (* In-flight content: the whole dirty line about to be written back
          (a clean line has nothing in flight and cannot tear). *)
       let line_start = index * t.line_size in
       let seg_len =
         if t.dirty.(index) then min t.line_size (t.size - line_start) else 0
       in
       step_fault t ~index ~seg_start:line_start ~seg_len ~src:t.volatile
         ~src_off:line_start
     end
     else Crash.step t.crash_ctl);
    if t.dirty.(index) then begin
      persist_line t index;
      Stats.incr_lines_flushed t.stats 1;
      incr persisted
    end
  done;
  !persisted

(* Write [len] bytes from [src] at [off], line by line, consulting the crash
   scheduler once per touched line (multi-line writes are not atomic).
   Caller holds the covering stripes. *)
let write_locked t ~off ~src ~src_off ~len =
  if len > 0 then begin
    let base = Offset.to_int off in
    (* inline [Layout.lines_covering]: returning the pair would allocate *)
    let first = base / t.line_size in
    let last = (base + len - 1) / t.line_size in
    let written = ref 0 in
    for index = first to last do
      let line_start = index * t.line_size in
      let line_end = min (line_start + t.line_size) t.size in
      let seg_start = max base line_start in
      let seg_end = min (base + len) line_end in
      let seg_len = seg_end - seg_start in
      (if t.faults.armed then
         (* In-flight content: this write's segment of the line — the
            store-plus-writeback the crash interrupts. *)
         step_fault t ~index ~seg_start ~seg_len ~src
           ~src_off:(src_off + (seg_start - base))
       else Crash.step t.crash_ctl);
      Bytes.blit src (src_off + (seg_start - base)) t.volatile seg_start
        seg_len;
      t.dirty.(index) <- true;
      written := !written + seg_len;
      if t.auto_flush then begin
        persist_line t index;
        Stats.incr_lines_flushed t.stats 1
      end
    done;
    assert (!written = len)
  end

let covering t off ~len = Layout.lines_covering ~line_size:t.line_size off ~len

(* Observability hooks for the three operation classes.  Each public
   operation is a named [_raw] body plus an inline gate: when recording is
   disabled the hook is one atomic load, a branch and a *direct* call into
   the raw body — no closure is allocated, which keeps the instrumented
   device within the <5% overhead budget (DESIGN.md section 8).  The
   latency window surrounds the lock acquisition and the locked body, so
   contention shows up in the histograms — that is the point of measuring.
   No sample is recorded when the body raises: a crash signal aborts the
   operation, so there is no completed latency to report. *)

let read_bytes_raw t ~off ~len =
  if len = 0 then begin
    (* Zero-length reads, writes and flushes all consult the crash
       scheduler exactly once, via [Crash.check]: a crashed device
       refuses them like any other operation, but they never count as a
       crash *point* (no persistence op is recorded), so crash-point
       sweeps see the same op numbering whether or not a protocol
       issues degenerate empty calls (see pmem.mli / stats.mli). *)
    Crash.check t.crash_ctl;
    Stats.incr_reads t.stats;
    Bytes.empty
  end
  else begin
    let first, last = covering t off ~len in
    (* Reads are not scheduling points, but the model checker's reduction
       needs them to detect read/write races between coarser transitions
       (crash.mli, "Scheduler hook"). *)
    Crash.note_read t.crash_ctl ~first_line:first ~last_line:last;
    if t.flush_mode = Coalesced then read_drain t ~first ~last;
    if first = last then begin
      let mu = t.stripes.(stripe_of t first) in
      Mutex.lock mu;
      match
        Crash.check t.crash_ctl;
        Stats.incr_reads t.stats;
        Bytes.sub t.volatile (Offset.to_int off) len
      with
      | result ->
          Mutex.unlock mu;
          maybe_yield t;
          result
      | exception e ->
          Mutex.unlock mu;
          raise e
    end
    else
      with_lines t ~first ~last (fun () ->
          Crash.check t.crash_ctl;
          Stats.incr_reads t.stats;
          Bytes.sub t.volatile (Offset.to_int off) len)
  end

let read_bytes t ~off ~len =
  check_range t off len;
  if not (Obs.Config.enabled ()) then read_bytes_raw t ~off ~len
  else begin
    let t0_ns = Obs.Config.now_ns () in
    let result = read_bytes_raw t ~off ~len in
    Obs.Probe.record_latency Obs.Probe.Pmem_read ~t0_ns;
    Obs.Counters.incr_reads Obs.Probe.counters;
    result
  end

let write_bytes_raw t ~off ~src ~len =
  if len = 0 then begin
    (* One [Crash.check], like a zero-length read; the call still
       counts as a write (see stats.mli). *)
    Crash.check t.crash_ctl;
    Stats.incr_writes t.stats
  end
  else begin
    (* inline [covering]: returning the pair would allocate per write *)
    let first = Offset.to_int off / t.line_size in
    let last = (Offset.to_int off + len - 1) / t.line_size in
    (* Scheduling point for the cooperative model checker: before any
       stripe lock is taken, so a suspended fiber holds no device mutex.
       The footprint names the covered lines so partial-order reduction
       can tell whether this store commutes with a neighbour's op. *)
    Crash.sched_point t.crash_ctl ~kind:Crash.Write ~first_line:first
      ~last_line:last ~persists:t.auto_flush;
    if last - first <= 1 then begin
      (* One- or two-line fast path (frame-sized writes): lock the covering
         stripes by hand in ascending order — no occupancy array, no
         closures (see the fast-path note above). *)
      let sa = stripe_of t first in
      let sb = if last = first then sa else stripe_of t last in
      let lo = min sa sb and hi = max sa sb in
      Mutex.lock t.stripes.(lo);
      if hi <> lo then Mutex.lock t.stripes.(hi);
      match
        Stats.incr_writes t.stats;
        write_locked t ~off ~src ~src_off:0 ~len
      with
      | () ->
          if hi <> lo then Mutex.unlock t.stripes.(hi);
          Mutex.unlock t.stripes.(lo);
          maybe_yield t
      | exception e ->
          if hi <> lo then Mutex.unlock t.stripes.(hi);
          Mutex.unlock t.stripes.(lo);
          raise e
    end
    else
      with_lines t ~first ~last (fun () ->
          Stats.incr_writes t.stats;
          write_locked t ~off ~src ~src_off:0 ~len)
  end

let write_bytes t ~off src =
  let len = Bytes.length src in
  check_range t off len;
  if not (Obs.Config.enabled ()) then write_bytes_raw t ~off ~src ~len
  else begin
    let t0_ns = Obs.Config.now_ns () in
    write_bytes_raw t ~off ~src ~len;
    Obs.Probe.record_latency Obs.Probe.Pmem_write ~t0_ns;
    record_write_counters t ~off ~len
  end

(* Single-line fast paths.

   The byte/word operations below lock their one stripe by hand instead of
   going through [with_lines], and write into [volatile] directly instead
   of staging through a temporary buffer.  The point is allocation: a
   closure for [Mutex.protect] plus a [Bytes.create 8] per operation feeds
   OCaml's minor heap on every simulated device access, and minor
   collections are stop-the-world across *all* domains in OCaml 5 — on the
   measured host they, not the locks, dominated the multicore anti-scaling.
   Each fast path preserves the exact operation order of the general path
   (stats, [Crash.step], mutation, dirty bit, auto-flush), so crash-point
   numbering is unchanged, and unlocks before re-raising a crash signal. *)

let read_byte_raw t off =
  let base = Offset.to_int off in
  let index = base / t.line_size in
  Crash.note_read t.crash_ctl ~first_line:index ~last_line:index;
  if t.flush_mode = Coalesced then read_drain t ~first:index ~last:index;
  let mu = t.stripes.(stripe_of t index) in
  Mutex.lock mu;
  match
    Crash.check t.crash_ctl;
    Stats.incr_reads t.stats;
    Char.code (Bytes.get t.volatile base)
  with
  | result ->
      Mutex.unlock mu;
      maybe_yield t;
      result
  | exception e ->
      Mutex.unlock mu;
      raise e

let read_byte t off =
  check_range t off 1;
  if not (Obs.Config.enabled ()) then read_byte_raw t off
  else begin
    let t0_ns = Obs.Config.now_ns () in
    let result = read_byte_raw t off in
    Obs.Probe.record_latency Obs.Probe.Pmem_read ~t0_ns;
    Obs.Counters.incr_reads Obs.Probe.counters;
    result
  end

let write_byte_raw t off b =
  let base = Offset.to_int off in
  let index = base / t.line_size in
  Crash.sched_point t.crash_ctl ~kind:Crash.Write ~first_line:index
    ~last_line:index ~persists:t.auto_flush;
  let mu = t.stripes.(stripe_of t index) in
  Mutex.lock mu;
  match
    Stats.incr_writes t.stats;
    Crash.step t.crash_ctl;
    Bytes.set t.volatile base (Char.chr b);
    t.dirty.(index) <- true;
    if t.auto_flush then begin
      persist_line t index;
      Stats.incr_lines_flushed t.stats 1
    end
  with
  | () ->
      Mutex.unlock mu;
      maybe_yield t
  | exception e ->
      Mutex.unlock mu;
      raise e

let write_byte t off b =
  if b < 0 || b > 255 then invalid_arg "Pmem.write_byte: not a byte";
  check_range t off 1;
  if not (Obs.Config.enabled ()) then write_byte_raw t off b
  else begin
    let t0_ns = Obs.Config.now_ns () in
    write_byte_raw t off b;
    Obs.Probe.record_latency Obs.Probe.Pmem_write ~t0_ns;
    record_write_counters t ~off ~len:1
  end

let read_int64_raw t off =
  let base = Offset.to_int off in
  let index = base / t.line_size in
  Crash.note_read t.crash_ctl ~first_line:index
    ~last_line:((base + 7) / t.line_size);
  if t.flush_mode = Coalesced then
    read_drain t ~first:index ~last:((base + 7) / t.line_size);
  if (base + 7) / t.line_size = index then begin
    let mu = t.stripes.(stripe_of t index) in
    Mutex.lock mu;
    match
      Crash.check t.crash_ctl;
      Stats.incr_reads t.stats;
      Bytes.get_int64_le t.volatile base
    with
    | result ->
        Mutex.unlock mu;
        maybe_yield t;
        result
    | exception e ->
        Mutex.unlock mu;
        raise e
  end
  else
    let first, last = covering t off ~len:8 in
    with_lines t ~first ~last (fun () ->
        Crash.check t.crash_ctl;
        Stats.incr_reads t.stats;
        Bytes.get_int64_le t.volatile base)

let read_int64 t off =
  check_range t off 8;
  if not (Obs.Config.enabled ()) then read_int64_raw t off
  else begin
    let t0_ns = Obs.Config.now_ns () in
    let result = read_int64_raw t off in
    Obs.Probe.record_latency Obs.Probe.Pmem_read ~t0_ns;
    Obs.Counters.incr_reads Obs.Probe.counters;
    result
  end

let write_int64_raw t off v =
  let base = Offset.to_int off in
  let index = base / t.line_size in
  Crash.sched_point t.crash_ctl ~kind:Crash.Write ~first_line:index
    ~last_line:((base + 7) / t.line_size) ~persists:t.auto_flush;
  if (base + 7) / t.line_size = index then begin
    let mu = t.stripes.(stripe_of t index) in
    Mutex.lock mu;
    match
      Stats.incr_writes t.stats;
      Crash.step t.crash_ctl;
      Bytes.set_int64_le t.volatile base v;
      t.dirty.(index) <- true;
      if t.auto_flush then begin
        persist_line t index;
        Stats.incr_lines_flushed t.stats 1
      end
    with
    | () ->
        Mutex.unlock mu;
        maybe_yield t
    | exception e ->
        Mutex.unlock mu;
        raise e
  end
  else
    let first, last = covering t off ~len:8 in
    with_lines t ~first ~last (fun () ->
        Stats.incr_writes t.stats;
        let src = Bytes.create 8 in
        Bytes.set_int64_le src 0 v;
        write_locked t ~off ~src ~src_off:0 ~len:8)

let write_int64 t off v =
  check_range t off 8;
  if not (Obs.Config.enabled ()) then write_int64_raw t off v
  else begin
    let t0_ns = Obs.Config.now_ns () in
    write_int64_raw t off v;
    Obs.Probe.record_latency Obs.Probe.Pmem_write ~t0_ns;
    record_write_counters t ~off ~len:8
  end

(* Native-[int] accessors with the [Int64] conversion fused into the
   locked fast path.  [Int64.to_int (read_int64 t off)] boxes the value
   across the function boundary — one minor-heap allocation per device
   word read.  The heap allocator touches several device words per
   [alloc]/[free]; fusing the conversion into the same body as
   [Bytes.get_int64_le] lets the compiler keep the intermediate unboxed
   (see the stop-the-world note above [read_byte_raw]). *)
let read_int t off =
  check_range t off 8;
  if Obs.Config.enabled () then Int64.to_int (read_int64 t off)
  else begin
    let base = Offset.to_int off in
    let index = base / t.line_size in
    if (base + 7) / t.line_size = index then begin
      Crash.note_read t.crash_ctl ~first_line:index ~last_line:index;
      if t.flush_mode = Coalesced then read_drain t ~first:index ~last:index;
      let mu = t.stripes.(stripe_of t index) in
      Mutex.lock mu;
      match
        Crash.check t.crash_ctl;
        Stats.incr_reads t.stats;
        Int64.to_int (Bytes.get_int64_le t.volatile base)
      with
      | result ->
          Mutex.unlock mu;
          maybe_yield t;
          result
      | exception e ->
          Mutex.unlock mu;
          raise e
    end
    else Int64.to_int (read_int64_raw t off)
  end

let write_int t off v =
  check_range t off 8;
  if Obs.Config.enabled () then write_int64 t off (Int64.of_int v)
  else begin
    let base = Offset.to_int off in
    let index = base / t.line_size in
    if (base + 7) / t.line_size = index then begin
      Crash.sched_point t.crash_ctl ~kind:Crash.Write ~first_line:index
        ~last_line:index ~persists:t.auto_flush;
      let mu = t.stripes.(stripe_of t index) in
      Mutex.lock mu;
      match
        Stats.incr_writes t.stats;
        Crash.step t.crash_ctl;
        Bytes.set_int64_le t.volatile base (Int64.of_int v);
        t.dirty.(index) <- true;
        if t.auto_flush then begin
          persist_line t index;
          Stats.incr_lines_flushed t.stats 1
        end
      with
      | () ->
          Mutex.unlock mu;
          maybe_yield t
      | exception e ->
          Mutex.unlock mu;
          raise e
    end
    else write_int64_raw t off (Int64.of_int v)
  end

let cas_int64_raw t off ~expected ~desired ~index =
  Crash.sched_point t.crash_ctl ~kind:Crash.Cas ~first_line:index
    ~last_line:index ~persists:t.auto_flush;
  (* The CAS reads the word before deciding: a dependent read like any
     other, so a pending line is drained first. *)
  if t.flush_mode = Coalesced then read_drain t ~first:index ~last:index;
  let base = Offset.to_int off in
  let mu = t.stripes.(stripe_of t index) in
  Mutex.lock mu;
  match
    Crash.step t.crash_ctl;
    Stats.incr_reads t.stats;
    let current = Bytes.get_int64_le t.volatile base in
    if Int64.equal current expected then begin
      Stats.incr_writes t.stats;
      (* A single-line write: no extra crash point between the read and
         the write, which models a hardware CAS instruction. *)
      Bytes.set_int64_le t.volatile base desired;
      t.dirty.(index) <- true;
      if t.auto_flush then begin
        persist_line t index;
        Stats.incr_lines_flushed t.stats 1
      end;
      true
    end
    else false
  with
  | result ->
      Mutex.unlock mu;
      maybe_yield t;
      result
  | exception e ->
      Mutex.unlock mu;
      raise e

let cas_int64 t off ~expected ~desired =
  check_range t off 8;
  if not (Layout.same_line ~line_size:t.line_size off ~len:8) then
    invalid_arg "Pmem.cas_int64: word crosses a cache line";
  let index = Layout.line_index ~line_size:t.line_size off in
  if not (Obs.Config.enabled ()) then cas_int64_raw t off ~expected ~desired ~index
  else begin
    let t0_ns = Obs.Config.now_ns () in
    let result = cas_int64_raw t off ~expected ~desired ~index in
    Obs.Probe.record_latency Obs.Probe.Pmem_cas ~t0_ns;
    result
  end

(* Coalesced-mode flush body: consult the crash scheduler once per covering
   line exactly like the eager path — crash-point numbering is identical in
   both modes, so an [At_op] placement lands at the same operation whether
   or not coalescing is on — but instead of persisting, mark each dirty
   line pending and remember the newly-marked ones for the caller to log
   once the stripes are released.  The two-line fast path mirrors the eager
   one: no closure, at most two ref cells. *)
let elide_fast t ~first ~last =
  let sa = stripe_of t first in
  let sb = if last = first then sa else stripe_of t last in
  let lo = min sa sb and hi = max sa sb in
  let m0 = ref (-1) and m1 = ref (-1) in
  Mutex.lock t.stripes.(lo);
  if hi <> lo then Mutex.lock t.stripes.(hi);
  (match
     Stats.incr_flushes_elided t.stats;
     for index = first to last do
       Crash.step t.crash_ctl;
       if t.dirty.(index) && not t.pending.(index) then begin
         t.pending.(index) <- true;
         if !m0 < 0 then m0 := index else m1 := index
       end
     done
   with
  | () ->
      if hi <> lo then Mutex.unlock t.stripes.(hi);
      Mutex.unlock t.stripes.(lo)
  | exception e ->
      if hi <> lo then Mutex.unlock t.stripes.(hi);
      Mutex.unlock t.stripes.(lo);
      raise e);
  if !m0 >= 0 then log_append t !m0;
  if !m1 >= 0 then log_append t !m1;
  maybe_yield t;
  0

let elide_slow t ~first ~last =
  let marked = ref [] in
  with_lines t ~first ~last (fun () ->
      Stats.incr_flushes_elided t.stats;
      for index = first to last do
        Crash.step t.crash_ctl;
        if t.dirty.(index) && not t.pending.(index) then begin
          t.pending.(index) <- true;
          marked := index :: !marked
        end
      done);
  List.iter (log_append t) (List.rev !marked);
  0

let flush_raw t ~off ~len =
  if len = 0 then begin
    (* One [Crash.check], like a zero-length read; the call still
       counts as a flush (see stats.mli). *)
    Crash.check t.crash_ctl;
    (match t.flush_mode with
    | Eager -> Stats.incr_flushes t.stats
    | Coalesced -> Stats.incr_flushes_elided t.stats);
    0
  end
  else begin
    (* inline [covering]: returning the pair would allocate per flush *)
    let first = Offset.to_int off / t.line_size in
    let last = (Offset.to_int off + len - 1) / t.line_size in
    Crash.sched_point t.crash_ctl ~kind:Crash.Flush ~first_line:first
      ~last_line:last ~persists:true;
    match t.flush_mode with
    | Coalesced ->
        if last - first <= 1 then elide_fast t ~first ~last
        else elide_slow t ~first ~last
    | Eager ->
    if last - first <= 1 then begin
      let sa = stripe_of t first in
      let sb = if last = first then sa else stripe_of t last in
      let lo = min sa sb and hi = max sa sb in
      Mutex.lock t.stripes.(lo);
      if hi <> lo then Mutex.lock t.stripes.(hi);
      match
        Stats.incr_flushes t.stats;
        flush_lines_locked t ~off ~len
      with
      | persisted ->
          if hi <> lo then Mutex.unlock t.stripes.(hi);
          Mutex.unlock t.stripes.(lo);
          maybe_yield t;
          persisted
      | exception e ->
          if hi <> lo then Mutex.unlock t.stripes.(hi);
          Mutex.unlock t.stripes.(lo);
          raise e
    end
    else
      with_lines t ~first ~last (fun () ->
          Stats.incr_flushes t.stats;
          flush_lines_locked t ~off ~len)
  end

let flush t ~off ~len =
  if len < 0 then invalid_arg "Pmem.flush: negative length";
  check_range t off len;
  if not (Obs.Config.enabled ()) then ignore (flush_raw t ~off ~len : int)
  else begin
    let t0_ns = Obs.Config.now_ns () in
    let persisted = flush_raw t ~off ~len in
    Obs.Probe.record_latency Obs.Probe.Pmem_flush ~t0_ns;
    match t.flush_mode with
    | Eager -> Obs.Counters.record_flush Obs.Probe.counters ~lines:persisted
    | Coalesced -> Obs.Counters.record_flush_elided Obs.Probe.counters
  end

let flush_byte t off = flush t ~off ~len:1

(* Persist barriers.  In eager mode both are complete no-ops — not even a
   [Crash.check] — so sprinkling them through [Exec]/[Driver] leaves the
   eager crash-point numbering and counter totals byte-identical to the
   pre-coalescer behaviour. *)

let persist_barrier t =
  match t.flush_mode with
  | Eager -> ()
  | Coalesced ->
      Crash.check t.crash_ctl;
      drain_own t

let drain_all t =
  match t.flush_mode with
  | Eager -> ()
  | Coalesced ->
      Crash.check t.crash_ctl;
      drain_every_log t

let crash t =
  (* Reset the pending logs first, without stripes held (lock order: log
     before stripe).  An entry appended by a racing flush after this reset
     is neutralised below — clearing every pending bit under the stripes
     makes any late entry stale, and drains skip stale entries. *)
  Array.iter
    (fun log ->
      Mutex.lock log.log_mu;
      log.log_len <- 0;
      Mutex.unlock log.log_mu)
    t.logs;
  with_all_lines t (fun () ->
      Stats.incr_crashes t.stats;
      Crash.trigger t.crash_ctl;
      Array.iteri
        (fun index dirty ->
          if dirty then begin
            let survives =
              match t.policy with
              | Lose_all -> false
              | Lose_none -> true
              | Lose_random _ -> Random.State.bool t.crash_rng
            in
            if survives then begin
              persist_line t index;
              Stats.incr_lines_survived t.stats 1
            end
            else begin
              t.dirty.(index) <- false;
              t.pending.(index) <- false;
              Stats.incr_lines_lost t.stats 1
            end
          end)
        t.dirty;
      (* Reboot visibility: the cache is empty, the persistent image is all
         there is. *)
      Backend.blit_to t.backend ~off:0 ~dst:t.volatile ~dst_off:0 ~len:t.size)

let restart t =
  Crash.reset t.crash_ctl;
  if t.faults.armed then apply_bitflips t

let crash_and_restart t =
  crash t;
  restart t

let peek_volatile t ~off ~len =
  check_range t off len;
  if len = 0 then Bytes.empty
  else
    with_all_lines t (fun () -> Bytes.sub t.volatile (Offset.to_int off) len)

let peek_persistent t ~off ~len =
  check_range t off len;
  if len = 0 then Bytes.empty
  else
    with_all_lines t (fun () ->
        Backend.read t.backend ~off:(Offset.to_int off) ~len)

let dirty_line_count t =
  with_all_lines t (fun () ->
      Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.dirty)

let is_dirty t off =
  check_range t off 1;
  let index = Layout.line_index ~line_size:t.line_size off in
  with_lines t ~first:index ~last:index (fun () -> t.dirty.(index))

let pending_line_count t =
  with_all_lines t (fun () ->
      Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 t.pending)

let is_pending t off =
  check_range t off 1;
  let index = Layout.line_index ~line_size:t.line_size off in
  with_lines t ~first:index ~last:index (fun () -> t.pending.(index))

let unsafe_break_drain ?(skip = 1) t = t.drain_breakage <- skip
