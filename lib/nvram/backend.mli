(** Persistent backing store of the simulated device.

    The backend holds the bytes that survive a crash.  Two backends are
    provided:

    - {e memory}: the persistent image is an ordinary byte buffer.  Fast;
      used by tests and benchmarks.  A simulated crash keeps the buffer and
      discards only the volatile cache above it (see {!Pmem}).
    - {e file}: the persistent image additionally lives in a real file, as in
      the paper's HDD-backed emulation.  Every persisted line is written
      through to the file, so the image survives a real process kill
      ([bin/nvram_runner] exercises this).

    All operations address the {e persistent} image directly; the volatile
    cache is layered on top by {!Pmem} and is invisible here. *)

type t

val memory : size:int -> t
(** [memory ~size] is a fresh all-zero in-memory persistent image. *)

val file :
  ?sync:bool -> ?persist_delay:float -> path:string -> size:int -> unit -> t
(** [file ~path ~size ()] opens (or creates, zero-filled) the persistent
    image stored in [path].  If the file exists its contents are loaded, so a
    restarted process observes the bytes persisted before the crash.  When
    [sync] is [true] (default [false]) every write-through is followed by an
    [fsync].  [persist_delay] (seconds, default 0) sleeps on every persist,
    modelling the latency of slow persistent media (the paper's HDD-backed
    emulation) — it also gives the kill-based crash emulation of
    [bin/nvram_runner] realistic windows to interrupt.

    @raise Invalid_argument if an existing file's size differs from [size]. *)

val size : t -> int

val read : t -> off:int -> len:int -> bytes
(** [read t ~off ~len] reads [len] bytes of the persistent image. *)

val blit_to : t -> off:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** [blit_to t ~off ~dst ~dst_off ~len] copies persistent bytes into [dst]. *)

val persist : t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
(** [persist t ~off ~src ~src_off ~len] makes the given bytes durable at
    offset [off] of the image (write-through to the file for file
    backends). *)

val flip_bit : t -> off:int -> bit:int -> unit
(** [flip_bit t ~off ~bit] inverts one bit of the persistent image —
    simulated bit rot.  The flip goes straight to the durable bytes
    (write-through on file backends), bypassing the volatile cache: rot
    happens at rest, not in flight.

    @raise Invalid_argument if [off] is outside the image or [bit] is not
    in [0..7]. *)

val close : t -> unit
(** [close t] releases the file descriptor of a file backend (no-op for
    memory backends). *)

val is_file : t -> bool
