(** Simulated byte-addressable persistent memory with a volatile cache.

    This is the hardware model of Sections 1–2 of the paper:

    - the device is a byte-addressable region of a fixed size;
    - writes land in a {e volatile} cache organised in lines;
    - {!flush} persists whole cache lines; persisting one line is atomic
      (never torn by a crash) — {e unless} a torn-write fault plan is armed
      with {!arm_faults}, in which case the one line whose persist the
      crash interrupts may be torn into a survived prefix, shredded bytes,
      and old content;
    - at a crash, every dirty (written but unflushed) line is either lost or
      — modelling spontaneous cache write-back — persisted, according to the
      device's {!policy}; everything previously persisted survives.

    A write that spans several cache lines is {e not} atomic: the crash
    scheduler is consulted once per touched line, so a crash can tear a
    multi-line write between lines (Fig. 5 of the paper).

    With [auto_flush = true] the device persists every write immediately,
    emulating an NVRAM without a volatile cache — the model assumed by the
    CAS algorithm of Section 5.

    All operations are linearizable, which models x86-TSO-style atomic
    cache-line access closely enough for the protocols in this repository.
    Internally the device is {e striped}: cache lines are partitioned over a
    fixed set of locks (stripe [s] guards every line [l] with
    [l mod stripes = s]), so operations on disjoint lines proceed in
    parallel across worker domains while an operation spanning several lines
    holds every covering stripe for its whole duration.  Whole-device
    operations ({!crash}, {!peek_volatile}, {!peek_persistent},
    {!dirty_line_count}) take all stripes, in ascending order like every
    other operation, so the locking is deadlock-free.  Operations raise
    {!Crash.Crash_now} once the system has crashed, so that all worker
    domains of a crashed system stop promptly. *)

type t

type policy =
  | Lose_all  (** Every dirty line is lost at a crash (worst case). *)
  | Lose_none
      (** Every dirty line survives (eADR-like; makes flushes redundant). *)
  | Lose_random of int
      (** Each dirty line independently survives or is lost, decided by a
          deterministic PRNG seeded with the given seed (adversarial
          testing). *)

(** How {!flush} behaves — FliT-style write-behind elision.

    In {!Eager} mode (the default, and the pre-existing behaviour) a flush
    persists its dirty lines on the spot.  In {!Coalesced} mode a flush
    only {e marks} its dirty lines pending; pending lines are written back
    in first-flush order at the next persist barrier — an explicit
    {!persist_barrier}, a dependent read of a pending line, an era boundary
    ({!drain_all}), or implicitly never if a crash intervenes (a pending
    line is still a dirty line and is lost or kept by the crash {!policy}).
    Repeated flushes of the same line between barriers coalesce into one
    write-back, which is where the flush-per-op saving comes from.

    Crash-point numbering is identical in both modes: a coalesced flush
    consults the crash scheduler once per covering line exactly like an
    eager one, so an [At_op] crash plan lands at the same operation either
    way.  Drains are crash-atomic (they contain no crash point), so every
    persistence state reachable under coalescing — the persisted set is
    always a prefix of the flush sequence — is also reachable under eager
    flushing with a crash placed earlier; [Mc.Explore.check_equivalence]
    verifies the observable consequence of this argument exhaustively. *)
type flush_mode = Eager | Coalesced

val create :
  ?line_size:int ->
  ?policy:policy ->
  ?auto_flush:bool ->
  ?flush_mode:flush_mode ->
  ?yield_probability:float ->
  ?stripes:int ->
  ?backend:Backend.t ->
  size:int ->
  unit ->
  t
(** [create ~size ()] is a fresh device of [size] bytes.  [line_size]
    defaults to 64 and must be a power of two; [policy] defaults to
    {!Lose_all}; [auto_flush] defaults to [false]; [backend] defaults to an
    in-memory image of [size] bytes.

    [stripes] (default 64) is the number of device-lock stripes; it is
    clamped to the number of cache lines and rounded down to a power of
    two.  More stripes mean less contention between worker domains
    operating on disjoint lines; one stripe restores the old fully
    serialised device.

    [yield_probability] (default 0) makes each device operation deschedule
    the calling OS thread with the given probability, so that concurrent
    workers on a machine with few cores interleave at operation granularity
    instead of OS-timeslice granularity — without it, the narrow
    interleaving windows that concurrency protocols defend against
    essentially never occur in simulation.  Set it (e.g. to 0.2–0.5) for
    concurrency experiments. *)

val size : t -> int
val line_size : t -> int
val auto_flush : t -> bool

val flush_mode : t -> flush_mode
(** The device's {!flush_mode}; [Eager] unless {!create} was told
    otherwise.  [auto_flush = true] makes coalescing inert (writes persist
    immediately, so a flush never finds a dirty line to mark). *)

val default_stripes : int
(** Stripe count used when {!create} is not given [?stripes]. *)

val stripe_count : t -> int
(** Number of device-lock stripes actually in use (a power of two). *)

val crash_ctl : t -> Crash.t
(** The device's crash controller.  Every persistence mutator (non-empty
    write, flush, or CAS) additionally invokes [Crash.sched_point] on it at
    operation entry — {e before} taking any stripe lock — so a cooperative
    scheduler installed with [Crash.set_scheduler] gets a scheduling
    decision at exactly the operations the controller counts as crash
    points, and may suspend the calling fiber without holding device
    mutexes.  Reads and zero-length operations are not scheduling points,
    mirroring the crash-point rule. *)

val stats : t -> Stats.t

(** {1 Data access} *)

val read_byte : t -> Offset.t -> int
(** [read_byte t off] is the byte at [off] (0–255), as currently visible
    (cache content wins over persistent image). *)

val write_byte : t -> Offset.t -> int -> unit
(** [write_byte t off b] stores byte [b] (0–255) at [off] in the cache. *)

val read_bytes : t -> off:Offset.t -> len:int -> bytes
(** [read_bytes t ~off ~len] copies [len] bytes of currently visible
    content.  A zero-length read touches no line; like every zero-length
    operation it consults the crash scheduler exactly once via
    [Crash.check] (so it raises if a crash has already fired) but is never
    itself a crash {e point}, and it still counts as one call in
    {!Stats}. *)

val write_bytes : t -> off:Offset.t -> bytes -> unit
(** [write_bytes t ~off data] stores [data] into the cache.  A zero-length
    write follows the same rule as a zero-length read: one [Crash.check],
    never a crash point, one {!Stats} call. *)

val read_int64 : t -> Offset.t -> int64
(** Little-endian 8-byte read. *)

val write_int64 : t -> Offset.t -> int64 -> unit

val read_int : t -> Offset.t -> int
(** [read_int t off] reads an OCaml [int] stored by {!write_int} (8 bytes,
    little-endian). *)

val write_int : t -> Offset.t -> int -> unit

val cas_int64 : t -> Offset.t -> expected:int64 -> desired:int64 -> bool
(** [cas_int64 t off ~expected ~desired] atomically compares the 8-byte word
    at [off] with [expected] and, on equality, replaces it with [desired].
    Returns whether the swap happened.  The word must not cross a cache
    line.  In auto-flush mode a successful swap is persisted immediately. *)

(** {1 Persistence} *)

val flush : t -> off:Offset.t -> len:int -> unit
(** [flush t ~off ~len] persists every cache line intersecting the byte
    range.  Each line is persisted atomically; the crash scheduler is
    consulted once per line, so a crash can land between lines.  A
    zero-length flush persists nothing but still counts as one flush call
    in {!Stats} — every call counts, whatever its length (see stats.mli).
    Like zero-length reads and writes it consults the crash scheduler
    exactly once via [Crash.check]: it raises if a crash has already
    fired, but contributes no crash point of its own. *)

val flush_byte : t -> Offset.t -> unit
(** [flush_byte t off] persists the single line containing [off] — the
    atomic one-byte flush that linearizes stack-end moves (Section 3.4). *)

val persist_barrier : t -> unit
(** [persist_barrier t] drains the calling domain's pending lines — the
    lines its elided flushes marked, written back in first-flush order.
    Linearization points ([Exec.call] completion) call this so an answer
    never externalises before its persistence points have taken effect.
    In {!Eager} mode this is a complete no-op (not even a crash check), so
    eager crash-point numbering and counters are unchanged by barriers
    sprinkled through the runtime.  In {!Coalesced} mode it refuses with
    [Crash.Crash_now] once the system has crashed, like any operation. *)

val drain_all : t -> unit
(** [drain_all t] drains {e every} domain's pending lines — the era
    boundary barrier the {!Driver} issues before arming a new crash plan.
    No-op in {!Eager} mode. *)

val unsafe_break_drain : ?skip:int -> t -> unit
(** [unsafe_break_drain t] sabotages the coalescer for tests: the next
    [skip] (default 1) line drains clear the dirty/pending tags {e without}
    writing the line back, modelling a forgotten write-back.  The
    equivalence check of [Mc.Explore] must demonstrably catch the resulting
    divergence — that is this hook's only purpose. *)

(** {1 Media faults}

    Seeded fault injection on top of the crash scheduler — torn lines at
    crash points and bit rot between eras — with the same replay
    discipline as crash plans: the whole fault schedule is a deterministic
    function of {!Crash.fault_plan} (given a deterministic crash
    schedule), so every fault is a reproducible schedule point.

    Fault plans are device state, not {!Crash} state: {!restart} models a
    reboot and reboots do not repair media, so fault plans survive
    [Crash.reset] and stay armed across every era of a run. *)

val arm_faults : ?targets:(int * int) array -> t -> Crash.fault_plan -> unit
(** [arm_faults t fplan] installs a media-fault plan and resets its
    counters and PRNGs (seeded from [fplan.fault_seed]).

    - [fplan.tear] counts {e crash events}: when the plan fires on the
      [n]-th crash, the cache line whose persist the crash interrupted is
      torn instead of left untouched — a seeded prefix of the in-flight
      bytes persists, up to 8 following bytes are shredded with seeded
      garbage, the rest keep their old durable content.  Only multi-byte
      writes and flushes can tear; the single-word fast paths
      ({!write_byte}, {!write_int64}, {!cas_int64}) model 8-byte hardware
      atomicity and are never torn.
    - [fplan.bitflip] counts {e restarts}: when the plan fires on the
      [n]-th {!restart}, 1–3 seeded bits flip inside [targets] (an array
      of [(offset, length)] regions; empty or omitted = the whole
      device) — bit rot at rest, applied write-through to the persistent
      image.

    @raise Invalid_argument if a target region lies outside the device. *)

val fault_plan : t -> Crash.fault_plan
(** The armed fault plan ({!Crash.no_faults} if none). *)

val inject_bitflip : t -> off:Offset.t -> bit:int -> unit
(** [inject_bitflip t ~off ~bit] deterministically flips one persisted bit
    right now, bypassing the plans — the byte-surgery hook corruption
    tests and the scrubber's fixtures are built on. *)

(** {1 Crash simulation} *)

val crash : t -> unit
(** [crash t] applies the crash: each dirty line is persisted or discarded
    according to the device policy, then the volatile cache is emptied so
    that the visible content equals the persistent image.  Idempotent.  Does
    not clear the crashed flag: use {!restart}. *)

val restart : t -> unit
(** [restart t] models the machine rebooting: clears the crashed flag and
    disarms the crash plan.  Must be preceded by {!crash}. *)

val crash_and_restart : t -> unit
(** [crash_and_restart t] is {!crash} followed by {!restart}. *)

(** {1 Introspection (tests and tooling)} *)

val peek_persistent : t -> off:Offset.t -> len:int -> bytes
(** [peek_persistent t ~off ~len] reads the {e persistent} image directly,
    bypassing the cache and the crash scheduler: the bytes that would be
    visible after a crash that loses every dirty line. *)

val peek_volatile : t -> off:Offset.t -> len:int -> bytes
(** [peek_volatile t ~off ~len] reads the currently visible content without
    consulting the crash scheduler or the statistics — for debugging tools
    that must not perturb a crash schedule. *)

val dirty_line_count : t -> int
val is_dirty : t -> Offset.t -> bool

val pending_line_count : t -> int
(** Number of lines marked pending by elided flushes and not yet drained.
    Always 0 on an eager device; [pending_line_count t <= dirty_line_count
    t] on any device (pending implies dirty). *)

val is_pending : t -> Offset.t -> bool

val backend : t -> Backend.t
