(** Integrity checksums for persistent metadata.

    Real NVRAM tears in-flight cache lines and rots bits at rest; the
    recovery paths therefore {e verify} metadata instead of trusting it.
    This module is the one checksum everybody shares: FNV-1a over bytes,
    folded to the width each header has room for.  FNV is not
    cryptographic — the adversary here is a media fault, not an attacker —
    but it detects every single-bit flip and has no alignment or table
    requirements, so the hot paths stay allocation-free.

    {2 Sabotage switch}

    {!enabled} gates every {e verification} (never checksum {e writing}).
    The fuzzer's sabotage self-check flips it off to prove the
    no-silent-corruption oracle has teeth: with verification disabled an
    injected fault must surface as a wrong answer, and the campaign must
    flag it.  Production code never touches this. *)

val fnv64 : bytes -> pos:int -> len:int -> int64
(** FNV-1a over [len] bytes of [bytes] starting at [pos]. *)

val fnv64_init : int64
(** The FNV-1a offset basis, for chained hashing with {!fnv64_sub}. *)

val fnv64_sub : int64 -> bytes -> pos:int -> len:int -> int64
(** [fnv64_sub acc b ~pos ~len] folds more bytes into a running hash.
    [fnv64 b ~pos ~len = fnv64_sub fnv64_init b ~pos ~len]. *)

val fnv64_byte : int64 -> int -> int64
(** [fnv64_byte acc b] folds one byte into a running hash. *)

val fnv64_int64 : int64 -> int64 -> int64
(** [fnv64_int64 acc v] folds the 8 little-endian bytes of [v] into a
    running hash without materialising them. *)

val code_of_int64 : int64 -> int
(** A one-byte nonzero integrity code of a 64-bit value: the FNV-1a hash
    folded to 8 bits, mapped away from [0] so that "code present" and
    "code matches" can share a byte with an all-zero "absent" state (the
    stack frame answer slot uses exactly that encoding). *)

val enabled : unit -> bool
(** Whether checksum {e verification} is on (default: yes).  Checksums are
    always computed and written; only the checks consult this. *)

val unsafe_set_enabled : bool -> unit
(** Sabotage hook for the fuzzer's self-check.  Disabling verification
    makes injected media faults invisible to recovery — which is the
    point: the campaign oracle must then catch the resulting wrong
    answers.  Never call this outside tests. *)
