(** Crash scheduling for the simulated NVRAM device.

    The paper emulates system failures by killing the process at a random
    moment (Section 5.2).  In-process simulation gives us strictly more
    control: every persistence-relevant operation performed on the device —
    a write, a flush of one line, or a hardware CAS; reads are excluded
    because a crash between two reads leaves the same persistent state as
    one just before the next write — consults a crash controller, and the
    controller decides whether the crash event fires {e before} that
    operation takes effect.  This makes crash
    points deterministic (reproducible from a seed or an operation index) and
    allows exhaustive enumeration of crash points in tests.

    The controller is shared by all worker threads of a system.  Once a crash
    fires, every subsequent operation on the device raises {!Crash_now} as
    well, so all workers stop promptly — modelling the {e system}
    crash-recovery model of Section 2.2 in which the whole machine fails at
    once. *)

exception Crash_now
(** Raised by device operations when the simulated system has crashed.  The
    operation that raises did {e not} take effect. *)

exception Thread_killed
(** Raised by a device operation to the {e one} thread whose operation
    triggered an individual-crash plan (see {!arm_kill}).  The rest of the
    system keeps running: this models the individual crash-recovery model
    of Section 2.2, where a single process fails and later recovers while
    the others continue. *)

type plan =
  | Never  (** No scheduled crash (crashes can still be {!trigger}ed). *)
  | At_op of int
      (** [At_op n] crashes immediately before the [n]-th persistence
          operation (1-based): that operation and all later ones do not take
          effect.  Used to enumerate crash points exhaustively. *)
  | Random of { seed : int; probability : float }
      (** Before every operation, crash with the given probability, using a
          deterministic PRNG seeded with [seed]. *)

type t

val create : ?plan:plan -> unit -> t
(** [create ()] is a controller with plan {!Never}. *)

val arm : t -> plan -> unit
(** [arm t plan] installs [plan] and resets the operation counter (but not
    the crashed flag; see {!reset}). *)

val step : t -> unit
(** [step t] records one persistence operation.  Raises {!Crash_now} if the
    system is already crashed or if the plan fires on this operation. *)

val check : t -> unit
(** [check t] raises {!Crash_now} if the system is crashed, without counting
    an operation. *)

val trigger : t -> unit
(** [trigger t] crashes the system immediately (does not raise). *)

val crashed : t -> bool
(** [crashed t] is [true] iff a crash has fired and {!reset} has not been
    called since. *)

val reset : t -> unit
(** [reset t] clears the crashed flag and disarms both the crash and the
    individual-crash plans ([Never]), modelling the restart of the machine.
    Every piece of scheduling state restarts from scratch: the operation
    counters, the kill tally of {!kills_fired}, {e and} the PRNG states —
    so a seeded [Random] plan armed after a reset replays its schedule
    from the seed rather than resuming mid-sequence, making seeded crash
    schedules reproducible across restarts. *)

val ops : t -> int
(** [ops t] is the number of operations recorded since the last {!arm} or
    {!reset}. *)

(** {1 Scheduler hook}

    Systematic model checking (lib/mc) needs a scheduling decision at the
    {e same} per-operation points this controller counts.  The hook fires at
    the entry of every persistence operation — before the device takes any
    stripe lock, so a cooperative scheduler may suspend the calling fiber
    there without holding device mutexes.  Every invocation carries the
    {e access footprint} of the operation about to run, which is what
    dynamic partial-order reduction needs to decide whether two operations
    commute. *)

type access_kind =
  | Write  (** A store of any width ([write_bytes], [write_int], …). *)
  | Flush  (** An explicit write-back request of a line range. *)
  | Cas  (** A hardware compare-and-swap: read and store of one word. *)

type access = {
  kind : access_kind;
  first_line : int;  (** First cache line covered, inclusive. *)
  last_line : int;  (** Last cache line covered, inclusive. *)
  persists : bool;
      (** The operation itself makes its lines durable: [true] for flushes
          and for writes/CAS on an auto-flush device, [false] for stores
          that only dirty the volatile cache. *)
}

val set_scheduler : t -> (access -> unit) option -> unit
(** [set_scheduler t (Some f)] installs [f] to be called at every
    persistence-operation entry with that operation's footprint;
    [set_scheduler t None] removes it (and drops any pending read log).
    Not thread-safe: intended for single-threaded cooperative runs only. *)

val sched_point :
  t -> kind:access_kind -> first_line:int -> last_line:int -> persists:bool ->
  unit
(** [sched_point t ~kind ~first_line ~last_line ~persists] invokes the
    installed scheduler callback, if any, with the given footprint.  Called
    by the device at persistence-operation entry points; allocation-free
    no-op when no callback is installed. *)

val note_read : t -> first_line:int -> last_line:int -> unit
(** [note_read t ~first_line ~last_line] records that the device read the
    given cache-line range.  Reads are not scheduling points (a crash
    between two reads leaves the same persistent state), but the reduction
    needs them to detect read/write races between coarser transitions; the
    log is only maintained while a scheduler is installed, so free-running
    reads pay a single branch. *)

val take_reads : t -> (int * int) list
(** [take_reads t] returns the line ranges read since the last call (most
    recent first) and clears the log.  The cooperative scheduler calls it
    after each fiber step to attribute the reads to the transition that
    just executed. *)

val plan : t -> plan
(** [plan t] is the currently armed crash plan — together with {!ops} it is
    enough to record where a schedule stood, so that tooling (the crash
    fuzzer) can replay a probabilistic plan as a deterministic [At_op]
    point. *)

(** {1 Plan serialisation}

    Textual encoding used by replayable crash-schedule artifacts:
    ["never"], ["at-op N"], or ["random SEED PROBABILITY"]. *)

val pp_plan : Format.formatter -> plan -> unit

val plan_to_string : plan -> string

val plan_of_string : string -> (plan, string) result
(** Inverse of {!plan_to_string} (tolerates extra whitespace); [Error msg]
    on anything else. *)

(** {1 Media-fault plans}

    Crash plans decide {e when} the machine dies; fault plans decide
    whether the media misbehaves around those deaths.  Both sub-plans reuse
    {!plan} but count {e different events} than crash plans count:

    - [tear] counts {e crash events} — when the [n]-th crash fires (or a
      seeded coin decides for this crash), the cache line whose persist the
      crash interrupted is torn: a deterministic prefix survives and the
      rest of the line is shredded with seeded garbage, instead of the
      all-or-nothing line persistence the device normally guarantees.
    - [bitflip] counts {e restarts} — after the device reboots, it flips a
      seeded number of persisted bits inside the configured target regions
      (bit rot at rest).

    [fault_seed] derives every PRNG involved, so a fault schedule replays
    exactly, like crash schedules.  Fault plans are armed on the {e device}
    ({!Pmem.arm_faults}), not on this controller: {!reset} models a machine
    restart and must not disarm media behaviour. *)

type fault_plan = { tear : plan; bitflip : plan; fault_seed : int }

val no_faults : fault_plan
(** [{ tear = Never; bitflip = Never; fault_seed = 0 }]. *)

val has_faults : fault_plan -> bool
(** Whether either sub-plan can ever fire. *)

val pp_fault_plan : Format.formatter -> fault_plan -> unit

(** {1 Individual crashes}

    A second, independent plan that kills the single thread whose
    persistence operation trips it, leaving the device and every other
    thread untouched.  One-shot: the plan disarms when it fires, so exactly
    one thread receives {!Thread_killed} per arming. *)

val arm_kill : t -> plan -> unit
(** [arm_kill t plan] installs an individual-crash plan with its own
    operation counter. *)

val kills_fired : t -> int
(** Number of individual crashes delivered since creation or the last
    {!reset}. *)
