(** Operation counters for a simulated persistent-memory device.

    The counters are updated atomically so that worker domains can share one
    device.  They are used by the benchmark harness to report how many
    flushes a protocol issues (the dominant cost on real NVRAM) and by tests
    to assert that protocols issue exactly the flushes the paper requires. *)

type t

val create : unit -> t

val reads : t -> int
(** Number of read operations served. *)

val writes : t -> int
(** Number of write operations served.  Every [write_*] call counts,
    including a zero-length [write_bytes]: the counters measure API calls
    (what a protocol {e issues}), not bytes moved, so [Experiment] verdicts
    that compare protocol variants see the same accounting rule on every
    code path.  Zero-length calls also share one crash-scheduler rule:
    each takes exactly one [Crash.check] (raising if a crash already
    fired) and is never a crash point — [Crash.ops] does not advance. *)

val flushes : t -> int
(** Number of [flush] calls served {e eagerly}.  Like {!writes}, every call
    counts — a zero-length [flush] persists no line but is still one flush
    call.  In coalesced mode (see {!Pmem.flush_mode}) a flush call is
    counted under {!flushes_elided} instead, never here: the two counters
    partition the flush calls, so eager-mode accounting is unchanged by the
    existence of the coalescer. *)

val flushes_elided : t -> int
(** Number of [flush] calls elided by the coalescer: the call only marked
    its dirty lines pending instead of persisting them.  Always [0] on an
    eager device. *)

val drains : t -> int
(** Number of drain events — persist barriers, dependent reads of a pending
    line, or era boundaries — that persisted at least one pending line.
    Always [0] on an eager device.  [flushes + drains] is the number of
    moments the device actually wrote lines back, which is the fair
    flush-cost comparison between the two modes. *)

val lines_flushed : t -> int
(** Number of cache lines persisted by explicit flushes (or by auto-flush
    writes). *)

val crashes : t -> int
(** Number of simulated crash events applied to the device. *)

val lines_lost : t -> int
(** Number of dirty cache lines discarded across all crash events. *)

val lines_survived : t -> int
(** Number of dirty cache lines that happened to be written back before a
    crash (see {!Pmem.policy}). *)

val torn_lines : t -> int
(** Number of cache lines torn by an injected media fault: the crash that
    interrupted their persist wrote back a deterministic prefix/shredded
    pattern instead of all-or-nothing (see {!Pmem.arm_faults}). *)

val bits_flipped : t -> int
(** Number of persisted bits flipped by injected bit-rot faults between
    eras (see {!Pmem.arm_faults}). *)

val incr_reads : t -> unit
val incr_writes : t -> unit
val incr_flushes : t -> unit
val incr_flushes_elided : t -> unit
val incr_drains : t -> unit
val incr_lines_flushed : t -> int -> unit
val incr_crashes : t -> unit
val incr_lines_lost : t -> int -> unit
val incr_lines_survived : t -> int -> unit
val incr_torn_lines : t -> unit
val incr_bits_flipped : t -> int -> unit

val reset : t -> unit
(** [reset t] zeroes every counter. *)

val pp : Format.formatter -> t -> unit
(** Prints a one-line human-readable summary. *)
